"""Execution backends: how the enactor dispatches per-GPU supersteps.

The paper's whole premise (Fig. 1, Section III-B) is that the n GPUs'
per-iteration work runs *concurrently* between BSP barriers.  The
simulation charges virtual time as if it did, but the enactor used to
execute the n virtual GPUs strictly serially in a Python loop, so real
wall-clock grew linearly with GPU count.  This module makes dispatch a
pluggable policy:

* :class:`SerialBackend` — run the supersteps in GPU-index order on the
  calling thread (the original behaviour; zero overhead, easiest to
  debug);
* :class:`ThreadsBackend` — run them on a persistent worker pool.  The
  NumPy kernels that dominate a superstep release the GIL, so per-GPU
  work overlaps on a multi-core host — but anything interpreter-bound
  stays GIL-serialized;
* :class:`ProcessesBackend` — one persistent forked worker per virtual
  GPU.  CSR structure and slice arrays live in shared-memory segments
  (:mod:`repro.core.shm`), so reads are zero-copy across workers and a
  worker's slice writes are immediately visible to the parent;
  everything else a superstep produces ships back as a pickled
  :class:`GpuStepEffects` plus a small sidecar (stream horizons, memory
  accounting, fault consumption, staged tracer/sanitizer records,
  declared per-GPU attribute mutations) that the parent replays at the
  barrier.  No GIL: true per-core scaling of the superstep work.

**Determinism contract.**  A backend only chooses *where* each superstep
runs; it must return the results in GPU-index order.  The enactor keeps
every backend bit-identical by construction: each per-GPU superstep
touches only its own GPU's state (streams, memory pool, data slice,
workspace) and *stages* every cross-GPU effect — outgoing messages,
metrics-record entries, interconnect traffic — in a
:class:`GpuStepEffects`, which the enactor merges in GPU-index order at
the barrier.  Serial, threaded, and forked runs execute the same
superstep code and the same merge, so results,
:class:`~repro.sim.metrics.RunMetrics`, virtual times, and sanitizer
reports are identical bit for bit (asserted in
``tests/core/test_backend_determinism.py``).

**Worker affinity.**  The processes backend pins each GPU to one worker
for the pool's lifetime, so per-GPU private mutable state (streams,
pools, workspace arenas, operator caches) evolves in exactly one
address space between barriers.  Workers are re-forked at the start of
every run and after any rollback/repartition (:meth:`begin_run` /
:meth:`invalidate`), which is also when the shared-memory manifest is
(re)built.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import DeviceLostError, SimulationError
from .shm import SliceManifest, _rewrap_like

__all__ = [
    "GpuStepEffects",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadsBackend",
    "ProcessesBackend",
    "make_backend",
    "BACKENDS",
]

BACKENDS = ("serial", "threads", "processes")


@dataclass
class GpuStepEffects:
    """One GPU's staged cross-GPU effects for one superstep.

    Everything a superstep produces that any *other* GPU (or the shared
    metrics record / interconnect) consumes lives here, so workers never
    race on shared structures.  The enactor applies these in GPU-index
    order at the barrier, reproducing exactly the mutation order of the
    serial loop — including dict key-insertion order, which JSON traces
    observe.  The dataclass is picklable by design: the processes
    backend ships it across the worker pipe verbatim.
    """

    gpu: int
    #: the GPU's next local input frontier
    frontier: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    compute_seconds: float = 0.0
    comm_seconds: float = 0.0
    #: merged input frontier size (summed into the record)
    frontier_size: int = 0
    direction: str = ""
    edges_visited: int = 0
    vertices_processed: int = 0
    #: combined incoming items; None when no messages arrived (the
    #: serial loop only creates the record key when mail was processed)
    comm_compute_items: Optional[int] = None
    items_sent: int = 0
    bytes_sent: int = 0
    #: outgoing messages: (dst_gpu, arrival_timestamp, Message)
    sends: List[Tuple[int, float, object]] = field(default_factory=list)
    #: logical byte size of each sent message, replayed onto the
    #: interconnect's traffic counters at merge time
    transfer_nbytes: List[int] = field(default_factory=list)
    #: transient communication faults survived via retry this superstep
    comm_retries: int = 0
    #: virtual seconds this GPU spent in retry backoff
    retry_seconds: float = 0.0
    #: allocation failures survived by exact-fit regrown allocation
    oom_recoveries: int = 0


class ExecutionBackend:
    """Dispatch policy for one iteration's per-GPU supersteps."""

    name = "base"
    #: attached obs.Tracer, or None (the common, zero-overhead case);
    #: set by the enactor, read behind a single ``is None`` check
    tracer = None

    def bind(self, enactor) -> None:
        """Called once by the owning enactor after construction."""

    def begin_run(self) -> None:
        """Called at the start of every ``enact()`` (after problem and
        machine reset): backends with per-run worker state refresh it
        here."""

    def invalidate(self) -> None:
        """Called after rollback/repartition: any cached view of the
        problem's arrays (worker forks, shared-memory manifests) is
        stale and must be rebuilt before the next dispatch."""

    def run_iteration(
        self,
        enactor,
        iteration: int,
        iteration_obj,
        frontiers: List[np.ndarray],
        inboxes: List[list],
        gpu_indices: Sequence[int],
        guarded: bool = False,
    ) -> List[object]:
        """Run one iteration's supersteps for ``gpu_indices``; return
        their :class:`GpuStepEffects` in that order.

        With ``guarded=True`` a :class:`DeviceLostError` is returned as
        the GPU's result value instead of raised, so every superstep of
        the iteration still runs (the enactor recovers at the barrier).
        The default implementation builds per-GPU closures and defers to
        :meth:`map_supersteps` — serial and threads semantics live
        entirely there; the processes backend overrides this with a
        picklable dispatch protocol.
        """
        if not guarded:
            fns = [
                lambda idx=i: enactor._gpu_superstep(
                    idx, iteration, iteration_obj,
                    frontiers[idx], inboxes[idx],
                )
                for i in gpu_indices
            ]
        else:
            def guarded_step(idx):
                try:
                    return enactor._gpu_superstep(
                        idx, iteration, iteration_obj,
                        frontiers[idx], inboxes[idx],
                    )
                except DeviceLostError as exc:
                    return exc

            fns = [lambda idx=i: guarded_step(idx) for i in gpu_indices]
        return self.map_supersteps(fns)

    def map_supersteps(self, fns: List[Callable[[], GpuStepEffects]]
                       ) -> List[GpuStepEffects]:
        """Run all closures; return their results in list order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """GPU-index-order execution on the calling thread."""

    name = "serial"

    def map_supersteps(self, fns):
        return [fn() for fn in fns]


class ThreadsBackend(ExecutionBackend):
    """Persistent thread-pool execution of per-GPU supersteps.

    One pool lives for the backend's lifetime (spawning threads per
    iteration would dwarf a superstep's work).  Results are gathered in
    submission order, so callers observe GPU-index order regardless of
    completion order.
    """

    name = "threads"

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self, width: int) -> ThreadPoolExecutor:
        if self._pool is None:
            workers = self.max_workers or max(width, 1)
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-gpu"
            )
        return self._pool

    def map_supersteps(self, fns):
        if len(fns) <= 1:
            # nothing to overlap; skip the pool round-trip
            return [fn() for fn in fns]
        pool = self._ensure_pool(len(fns))
        if self.tracer is not None:
            self.tracer.instant(
                "backend.dispatch", backend=self.name,
                supersteps=len(fns), workers=pool._max_workers,
            )
        futures = [pool.submit(fn) for fn in fns]
        return [f.result() for f in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ---------------------------------------------------------------------------
# processes backend
# ---------------------------------------------------------------------------

def _worker_loop(conn, enactor, iteration_obj, gpu_ids, manifest):
    """Body of one forked worker: serve superstep requests until "stop".

    The worker owns ``gpu_ids`` for the pool's lifetime (GPU affinity:
    per-GPU mutable state — streams, pools, workspace arenas, operator
    caches — evolves only here between barriers).  Slice arrays are
    re-attached through the shared-memory registry by *name*, proving
    the manifest layer; CSR segments are reached through the inherited
    fork mappings, which alias the same physical pages.
    """
    problem = enactor.problem
    for gpu, name, arr in manifest.attach_slices():
        old = problem.data_slices[gpu].arrays.get(name)
        if old is not None and old.shape == arr.shape:
            problem.data_slices[gpu].arrays[name] = _rewrap_like(old, arr)
    machine = enactor.machine
    tracer = enactor.tracer
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            break
        _, iteration, jobs, attrs, stream_times, guarded = msg
        if attrs:
            problem.restore_attrs(attrs)
        replies = []
        error = None
        for gpu_index, frontier, inbox in jobs:
            gpu = machine.gpus[gpu_index]
            for sname, t in stream_times[gpu_index].items():
                gpu.streams[sname].available_at = t
            inj = machine.faults
            fault_snap = (
                inj.snapshot_consumption() if inj is not None else None
            )
            try:
                eff = enactor._gpu_superstep(
                    gpu_index, iteration, iteration_obj, frontier, inbox
                )
            except DeviceLostError as exc:
                if not guarded:
                    error = (gpu_index, exc)
                    break
                eff = exc
            except BaseException as exc:  # ships to the parent to re-raise
                error = (gpu_index, exc)
                break
            replies.append(
                _build_sidecar(enactor, gpu_index, eff, fault_snap)
            )
        if error is not None:
            gpu_index, exc = error
            try:
                conn.send(("error", gpu_index, exc))
            except Exception as send_err:  # unpicklable exception
                conn.send(("error", gpu_index, SimulationError(
                    f"{type(exc).__name__}: {exc} "
                    f"(original not picklable: {send_err})",
                    gpu_id=gpu_index,
                )))
        else:
            conn.send(("ok", replies))
    manifest.detach()
    conn.close()


def _build_sidecar(enactor, gpu_index, eff, fault_snap) -> dict:
    """Everything beyond slice-array writes that a worker's superstep
    changed and the parent must replay: stream horizons, pool
    accounting, frontier capacities, fault consumption, staged
    tracer/sanitizer records, and declared per-GPU attribute
    mutations (``ProblemBase.PER_GPU_MUTABLE_ATTRS``)."""
    machine = enactor.machine
    gpu = machine.gpus[gpu_index]
    tracer = enactor.tracer
    problem = enactor.problem
    return {
        "gpu": gpu_index,
        "eff": eff,
        "streams": {n: s.available_at for n, s in gpu.streams.items()},
        "pool": gpu.memory.export_state(),
        "fin": (enactor.frontiers_in[gpu_index].capacity,
                enactor.frontiers_in[gpu_index].grow_events),
        "fout": (enactor.frontiers_out[gpu_index].capacity,
                 enactor.frontiers_out[gpu_index].grow_events),
        "faults": (
            machine.faults.consumption_delta(fault_snap)
            if fault_snap is not None else None
        ),
        "trace": (
            tracer.take_staged(gpu_index) if tracer is not None else None
        ),
        "san": (
            enactor.sanitizer.take_stage(gpu_index)
            if enactor.sanitizer is not None else None
        ),
        "attrs": {
            name: getattr(problem, name)[gpu_index]
            for name in type(problem).PER_GPU_MUTABLE_ATTRS
        },
    }


class ProcessesBackend(ExecutionBackend):
    """Forked worker pool with shared-memory slices (see module docs).

    ``max_workers`` caps the pool; by default there is one worker per
    virtual GPU.  With fewer workers than GPUs, each worker owns a fixed
    subset (``gpu % workers``) and runs its supersteps in GPU order, so
    affinity — and therefore determinism — is preserved.

    Single-GPU dispatch short-circuits to inline execution: there is
    nothing to overlap, and the parent's state stays authoritative
    without any shared-memory machinery.
    """

    name = "processes"

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = max_workers
        self._workers: Optional[List[tuple]] = None
        self._owner: Dict[int, int] = {}
        self._manifest: Optional[SliceManifest] = None

    # -- lifecycle -------------------------------------------------------
    def begin_run(self) -> None:
        # per-run state (iteration object, reset streams/faults) is
        # captured at fork time, so each enact() gets a fresh pool; the
        # manifest survives — reset() refills the same shm arrays
        self._teardown_workers()

    def invalidate(self) -> None:
        # rollback/repartition rebuilt the slice arrays: both the forks
        # and the shm segments describe dead objects
        self._teardown_workers()
        if self._manifest is not None:
            self._manifest.release()
            self._manifest = None

    def close(self) -> None:
        self.invalidate()

    def _teardown_workers(self) -> None:
        if not self._workers:
            self._workers = None
            return
        for proc, conn in self._workers:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc, conn in self._workers:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=10)
            try:
                conn.close()
            except OSError:
                pass
        self._workers = None
        self._owner = {}

    def _spawn(self, enactor, iteration_obj, gpu_indices) -> None:
        if self._manifest is None:
            self._manifest = SliceManifest()
            self._manifest.migrate(enactor.problem)
        n = len(gpu_indices)
        width = max(1, min(self.max_workers or n, n))
        buckets: List[List[int]] = [[] for _ in range(width)]
        self._owner = {}
        for k, g in enumerate(gpu_indices):
            buckets[k % width].append(g)
            self._owner[g] = k % width
        ctx = multiprocessing.get_context("fork")
        self._workers = []
        for w in range(width):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_loop,
                args=(child_conn, enactor, iteration_obj,
                      buckets[w], self._manifest),
                daemon=True,
                name=f"repro-gpu-proc-{w}",
            )
            proc.start()
            child_conn.close()
            self._workers.append((proc, parent_conn))

    # -- dispatch --------------------------------------------------------
    def run_iteration(self, enactor, iteration, iteration_obj,
                      frontiers, inboxes, gpu_indices, guarded=False):
        gpu_indices = list(gpu_indices)
        if len(gpu_indices) <= 1:
            # nothing to overlap; the inline path keeps parent state
            # authoritative and needs no pool or shared memory
            return super().run_iteration(
                enactor, iteration, iteration_obj,
                frontiers, inboxes, gpu_indices, guarded=guarded,
            )
        if self._workers is None or any(
            g not in self._owner for g in gpu_indices
        ):
            self._teardown_workers()
            self._spawn(enactor, iteration_obj, gpu_indices)
        machine = enactor.machine
        jobs: List[List[tuple]] = [[] for _ in self._workers]
        stream_times = {
            g: {
                n: s.available_at
                for n, s in machine.gpus[g].streams.items()
            }
            for g in gpu_indices
        }
        for g in gpu_indices:
            jobs[self._owner[g]].append((g, frontiers[g], inboxes[g]))
        attrs = enactor.problem.snapshot_attrs()
        if self.tracer is not None:
            self.tracer.instant(
                "backend.dispatch", backend=self.name,
                supersteps=len(gpu_indices), workers=len(self._workers),
            )
        for w, (proc, conn) in enumerate(self._workers):
            if jobs[w]:
                conn.send((
                    "step", iteration, jobs[w], attrs,
                    {g: stream_times[g] for g, _f, _i in jobs[w]},
                    guarded,
                ))
        replies: Dict[int, dict] = {}
        for w, (proc, conn) in enumerate(self._workers):
            if not jobs[w]:
                continue
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                self._teardown_workers()
                raise SimulationError(
                    f"processes backend: worker {w} died mid-superstep",
                    iteration=iteration, site="backend.processes",
                )
            if msg[0] == "error":
                _, g, exc = msg
                self._teardown_workers()
                if isinstance(exc, BaseException):
                    raise exc
                raise SimulationError(str(exc), gpu_id=g)
            for side in msg[1]:
                replies[side["gpu"]] = side
        results = []
        for g in gpu_indices:
            side = replies[g]
            self._apply_sidecar(enactor, g, side)
            results.append(side["eff"])
        return results

    def _apply_sidecar(self, enactor, g, side) -> None:
        machine = enactor.machine
        gpu = machine.gpus[g]
        for sname, t in side["streams"].items():
            gpu.streams[sname].available_at = t
        gpu.memory.apply_state(side["pool"])
        fin, fout = enactor.frontiers_in[g], enactor.frontiers_out[g]
        fin.capacity, fin.grow_events = side["fin"]
        fout.capacity, fout.grow_events = side["fout"]
        if side["faults"] is not None and machine.faults is not None:
            machine.faults.apply_consumption_delta(side["faults"])
        if self.tracer is not None and side["trace"] is not None:
            self.tracer.adopt_staged(g, side["trace"])
        if side["san"] is not None and enactor.sanitizer is not None:
            enactor.sanitizer.adopt_stage(g, side["san"])
        for name, value in side["attrs"].items():
            getattr(enactor.problem, name)[g] = value

    def map_supersteps(self, fns):
        # arbitrary closures cannot cross a process boundary; the
        # structured path is run_iteration().  Plain callables (tests,
        # ad-hoc use) run inline, preserving list order.
        return [fn() for fn in fns]


def make_backend(
    spec: Union[str, ExecutionBackend, None], num_gpus: int = 0
) -> ExecutionBackend:
    """Resolve a backend spec: an instance, ``"serial"``, ``"threads"``
    / ``"threads:N"``, or ``"processes"`` / ``"processes:N"`` (explicit
    worker count)."""
    if spec is None:
        return SerialBackend()
    if isinstance(spec, ExecutionBackend):
        return spec
    name, _, arg = str(spec).partition(":")
    if name == "serial":
        return SerialBackend()
    if name == "threads":
        workers = int(arg) if arg else (num_gpus or None)
        return ThreadsBackend(max_workers=workers)
    if name == "processes":
        workers = int(arg) if arg else (num_gpus or None)
        return ProcessesBackend(max_workers=workers)
    raise ValueError(
        f"unknown execution backend {spec!r}; expected one of {BACKENDS}"
    )
