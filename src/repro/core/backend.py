"""Execution backends: how the enactor dispatches per-GPU supersteps.

The paper's whole premise (Fig. 1, Section III-B) is that the n GPUs'
per-iteration work runs *concurrently* between BSP barriers.  The
simulation charges virtual time as if it did, but the enactor used to
execute the n virtual GPUs strictly serially in a Python loop, so real
wall-clock grew linearly with GPU count.  This module makes dispatch a
pluggable policy:

* :class:`SerialBackend` — run the supersteps in GPU-index order on the
  calling thread (the original behaviour; zero overhead, easiest to
  debug);
* :class:`ThreadsBackend` — run them on a persistent worker pool.  The
  NumPy kernels that dominate a superstep release the GIL, so per-GPU
  work genuinely overlaps on a multi-core host.

**Determinism contract.**  A backend only chooses *where* each superstep
closure runs; it must return the results in GPU-index order.  The
enactor keeps both backends bit-identical by construction: each closure
touches only its own GPU's state (streams, memory pool, data slice,
workspace) and *stages* every cross-GPU effect — outgoing messages,
metrics-record entries, interconnect traffic — in a
:class:`GpuStepEffects`, which the enactor merges in GPU-index order at
the barrier.  Serial and threaded runs execute the same closure and the
same merge, so results, :class:`~repro.sim.metrics.RunMetrics`, virtual
times, and sanitizer reports are identical bit for bit (asserted in
``tests/core/test_backend_determinism.py``).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

__all__ = [
    "GpuStepEffects",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadsBackend",
    "make_backend",
    "BACKENDS",
]

BACKENDS = ("serial", "threads")


@dataclass
class GpuStepEffects:
    """One GPU's staged cross-GPU effects for one superstep.

    Everything a superstep produces that any *other* GPU (or the shared
    metrics record / interconnect) consumes lives here, so workers never
    race on shared structures.  The enactor applies these in GPU-index
    order at the barrier, reproducing exactly the mutation order of the
    serial loop — including dict key-insertion order, which JSON traces
    observe.
    """

    gpu: int
    #: the GPU's next local input frontier
    frontier: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    compute_seconds: float = 0.0
    comm_seconds: float = 0.0
    #: merged input frontier size (summed into the record)
    frontier_size: int = 0
    direction: str = ""
    edges_visited: int = 0
    vertices_processed: int = 0
    #: combined incoming items; None when no messages arrived (the
    #: serial loop only creates the record key when mail was processed)
    comm_compute_items: Optional[int] = None
    items_sent: int = 0
    bytes_sent: int = 0
    #: outgoing messages: (dst_gpu, arrival_timestamp, Message)
    sends: List[Tuple[int, float, object]] = field(default_factory=list)
    #: logical byte size of each sent message, replayed onto the
    #: interconnect's traffic counters at merge time
    transfer_nbytes: List[int] = field(default_factory=list)
    #: transient communication faults survived via retry this superstep
    comm_retries: int = 0
    #: virtual seconds this GPU spent in retry backoff
    retry_seconds: float = 0.0
    #: allocation failures survived by exact-fit regrown allocation
    oom_recoveries: int = 0


class ExecutionBackend:
    """Dispatch policy for one iteration's per-GPU superstep closures."""

    name = "base"
    #: attached obs.Tracer, or None (the common, zero-overhead case);
    #: set by the enactor, read behind a single ``is None`` check
    tracer = None

    def map_supersteps(self, fns: List[Callable[[], GpuStepEffects]]
                       ) -> List[GpuStepEffects]:
        """Run all closures; return their results in list order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """GPU-index-order execution on the calling thread."""

    name = "serial"

    def map_supersteps(self, fns):
        return [fn() for fn in fns]


class ThreadsBackend(ExecutionBackend):
    """Persistent thread-pool execution of per-GPU supersteps.

    One pool lives for the backend's lifetime (spawning threads per
    iteration would dwarf a superstep's work).  Results are gathered in
    submission order, so callers observe GPU-index order regardless of
    completion order.
    """

    name = "threads"

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self, width: int) -> ThreadPoolExecutor:
        if self._pool is None:
            workers = self.max_workers or max(width, 1)
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-gpu"
            )
        return self._pool

    def map_supersteps(self, fns):
        if len(fns) <= 1:
            # nothing to overlap; skip the pool round-trip
            return [fn() for fn in fns]
        pool = self._ensure_pool(len(fns))
        if self.tracer is not None:
            self.tracer.instant(
                "backend.dispatch", backend=self.name,
                supersteps=len(fns), workers=pool._max_workers,
            )
        futures = [pool.submit(fn) for fn in fns]
        return [f.result() for f in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_backend(
    spec: Union[str, ExecutionBackend, None], num_gpus: int = 0
) -> ExecutionBackend:
    """Resolve a backend spec: an instance, ``"serial"``, ``"threads"``,
    or ``"threads:N"`` (explicit worker count)."""
    if spec is None:
        return SerialBackend()
    if isinstance(spec, ExecutionBackend):
        return spec
    name, _, arg = str(spec).partition(":")
    if name == "serial":
        return SerialBackend()
    if name == "threads":
        workers = int(arg) if arg else (num_gpus or None)
        return ThreadsBackend(max_workers=workers)
    raise ValueError(
        f"unknown execution backend {spec!r}; expected one of {BACKENDS}"
    )
