"""Supervised worker pool: real-process fault tolerance for the
processes backend.

PR 3's fault machinery is entirely *virtual* — :mod:`repro.sim.faults`
injects simulated events into the model — but the processes backend
runs real OS processes where real failures happen: a worker SIGKILL'd
by the OOM killer or segfaulted inside a compiled kernel used to leave
the enactor blocked forever on an unbounded ``conn.recv()``, and a
hung worker stalled every superstep with no detection.

:class:`WorkerSupervisor` wraps the duplex-pipe step protocol with

* **heartbeats** — each worker runs a daemon thread bumping a shared
  ``multiprocessing.Value('d')`` with ``time.monotonic()`` every
  :attr:`SupervisionConfig.heartbeat_interval` seconds (CLOCK_MONOTONIC
  is system-wide on Linux, so the parent can age it directly);
* **adaptive per-superstep deadlines** — a multiple of the EWMA of
  observed superstep wall times, with a floor, so slow graphs don't
  trip false hangs and fast graphs don't wait minutes for a dead one;
* **liveness checks** — pipe EOF, a readable ``Process.sentinel`` /
  non-None ``exitcode``, and heartbeat staleness, surfaced as the typed
  errors :class:`~repro.errors.WorkerCrashError` /
  :class:`~repro.errors.WorkerHangError`;
* **shm integrity** — each worker checksums its GPU's slice windows at
  superstep end (``zlib.adler32``); the parent recomputes from its own
  mapping at the barrier and raises
  :class:`~repro.errors.ShmIntegrityError` on mismatch.

Escalation policy (see ``docs/robustness.md``): first failure of a
superstep → kill + respawn the worker, re-attach the shared-memory
slices by name, restore the pre-superstep **replay shadow** (a copy of
the dispatched GPUs' slice arrays — a crashed worker may have written
half its window, so naive re-execution would start from torn state),
and replay the in-flight superstep.  Because the parent's own Python
state (streams, pools, fault consumption, frontiers) is only mutated
when sidecars are applied *after* all replies arrive, a replayed
superstep re-executes bit-identically — the run completes with results
identical to a fault-free run.  If the respawn fails or the same
superstep dies twice, the failure converts into the existing
``DeviceLostError``-as-value path so the proven rollback + repartition
+ checkpoint-restore recovery takes over, with the replacement worker
pool resized to the survivor set.

The module-level helpers (:func:`wait_for_reply`, :func:`worker_recv`,
:func:`reap_worker`) are used by the backend even when supervision is
off, so *unsupervised* runs can no longer deadlock on a dead worker
either — they just lack deadlines, respawn, and checksums.
"""

from __future__ import annotations

import os
import signal
import time
import zlib
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ShmIntegrityError, WorkerCrashError, WorkerHangError

__all__ = [
    "SupervisionConfig",
    "WorkerSupervisor",
    "wait_for_reply",
    "worker_recv",
    "reap_worker",
    "slice_checksum",
]

#: how often the bounded waits wake up to run liveness checks
_POLL_INTERVAL = 0.05


@dataclass
class SupervisionConfig:
    """Tuning knobs for :class:`WorkerSupervisor`.

    The deadline for one superstep is
    ``max(deadline_floor, deadline_factor * ewma)`` where ``ewma`` is
    the exponentially weighted moving average of observed per-worker
    superstep wall times (``ewma_alpha`` weighting the newest sample).
    Before any sample exists the floor alone applies.  A heartbeat is
    considered stale after ``heartbeat_interval * stale_factor``
    seconds without an update.
    """

    #: seconds between heartbeat updates in each worker
    heartbeat_interval: float = 0.05
    #: heartbeat age (in intervals) that counts as a hang
    stale_factor: float = 40.0
    #: superstep deadline as a multiple of the EWMA wall time
    deadline_factor: float = 16.0
    #: absolute minimum superstep deadline, seconds
    deadline_floor: float = 10.0
    #: EWMA smoothing for observed superstep wall times
    ewma_alpha: float = 0.25
    #: liveness-check poll period for bounded waits, seconds
    poll_interval: float = _POLL_INTERVAL
    #: verify per-barrier adler32 checksums of shm slice windows
    shm_checksums: bool = True
    #: total respawns allowed per run before escalating to rollback
    max_respawns: int = 8
    #: bounded-join budget when reaping a worker, seconds
    teardown_timeout: float = 5.0

    @property
    def stale_after(self) -> float:
        """Seconds of heartbeat silence that count as a hang."""
        return self.heartbeat_interval * self.stale_factor


# ---------------------------------------------------------------------------
# bounded-wait helpers (used with and without a supervisor)
# ---------------------------------------------------------------------------

def wait_for_reply(
    conn,
    proc,
    timeout: Optional[float] = None,
    poll_interval: float = _POLL_INTERVAL,
    heartbeat=None,
    stale_after: Optional[float] = None,
):
    """Receive one message from ``conn``, bounded by liveness checks.

    Never blocks past ``poll_interval`` without re-checking that the
    worker is alive, so a SIGKILL'd worker surfaces as
    :class:`WorkerCrashError` instead of a deadlock.  ``timeout`` adds
    a hard deadline (``WorkerHangError``); ``heartbeat``/``stale_after``
    add staleness detection (``WorkerHangError`` with ``stale=True``).
    With all three None/absent the wait is unbounded in *time* but
    still bounded by worker liveness — the unsupervised guarantee.
    """
    start = time.monotonic()
    while True:
        step = poll_interval
        if timeout is not None:
            remaining = timeout - (time.monotonic() - start)
            if remaining <= 0:
                raise WorkerHangError(
                    f"worker exceeded its superstep deadline "
                    f"({timeout:.2f}s)", site="supervise.deadline",
                )
            step = min(step, remaining)
        ready = mp_connection.wait([conn, proc.sentinel], timeout=step)
        if conn in ready:
            try:
                # repro-check: disable=REP118 -- wait() above bounds this recv
                return conn.recv()
            except (EOFError, OSError):
                raise WorkerCrashError(
                    "worker pipe closed mid-reply",
                    exitcode=proc.exitcode, site="supervise.liveness",
                )
        if proc.sentinel in ready:
            # the process died; a reply may still be buffered in the
            # pipe (death after send) — drain it before giving up
            if conn.poll(0):
                try:
                    # repro-check: disable=REP118 -- poll(0) above bounds this recv
                    return conn.recv()
                except (EOFError, OSError):
                    pass
            proc.join(timeout=poll_interval)
            raise WorkerCrashError(
                f"worker process died (exitcode={proc.exitcode})",
                exitcode=proc.exitcode, site="supervise.liveness",
            )
        if heartbeat is not None and stale_after is not None:
            age = time.monotonic() - heartbeat.value
            if age > stale_after:
                raise WorkerHangError(
                    f"worker heartbeat stale for {age:.2f}s "
                    f"(threshold {stale_after:.2f}s)",
                    stale=True, site="supervise.heartbeat",
                )


def worker_recv(conn, poll_interval: float = 1.0):
    """Worker-side bounded request wait.

    Polls instead of blocking so an orphaned worker (parent died
    without sending "stop") notices its re-parenting to init and exits
    rather than lingering forever holding shm mappings.
    """
    while True:
        if conn.poll(poll_interval):
            # repro-check: disable=REP118 -- poll() above bounds this recv
            return conn.recv()
        if os.getppid() == 1:
            raise EOFError("parent process exited")


def reap_worker(proc, conn, timeout: float = 5.0) -> None:
    """Bounded, escalating teardown of one worker (never blocks forever).

    stop message → bounded join → SIGCONT (a SIGSTOPped worker ignores
    SIGTERM until resumed) + terminate → kill → close the pipe.  Safe
    to call on an already-dead worker.
    """
    try:
        conn.send(("stop",))
    except (BrokenPipeError, OSError, ValueError):
        pass
    proc.join(timeout=timeout)
    if proc.is_alive():
        try:
            os.kill(proc.pid, signal.SIGCONT)
        except (ProcessLookupError, PermissionError, OSError):
            pass
        proc.terminate()
        proc.join(timeout=timeout)
    if proc.is_alive():  # pragma: no cover - SIGKILL is the backstop
        proc.kill()
        proc.join(timeout=timeout)
    try:
        conn.close()
    except OSError:
        pass


def slice_checksum(data_slice) -> int:
    """adler32 over a GPU's slice arrays, in sorted-name order.

    Cheap enough to run per-barrier (~GB/s) and any single-byte flip
    changes it, which is exactly the cross-window corruption model the
    per-barrier integrity check exists to catch.
    """
    total = 1
    for name in sorted(data_slice.arrays):
        arr = data_slice.arrays[name]
        base = np.ascontiguousarray(arr.view(np.ndarray))
        total = zlib.adler32(name.encode("utf-8"), total)
        total = zlib.adler32(base, total)
    return total


# ---------------------------------------------------------------------------
# the supervisor
# ---------------------------------------------------------------------------

class WorkerSupervisor:
    """Policy + bookkeeping for supervising a real worker pool.

    Owned by the enactor (``Enactor(supervise=True)``), attached to the
    :class:`~repro.core.backend.ProcessesBackend`, which consults it at
    every dispatch.  The supervisor itself never touches pipes — the
    backend does the waiting via :func:`wait_for_reply` with the
    deadline/staleness parameters the supervisor computes — it owns the
    escalation *decisions*, the replay shadow, host-fault delivery,
    checksum verification, and the observability counters.
    """

    def __init__(self, config: Optional[SupervisionConfig] = None):
        self.config = config or SupervisionConfig()
        #: attached obs.Tracer, or None; set by the enactor
        self.tracer = None
        #: attached obs.FlightRecorder, or None; set by the enactor —
        #: every supervision event is mirrored into its bounded ring
        self.recorder = None
        # counters mirrored into RunMetrics at run end
        self.worker_respawns = 0
        self.supersteps_replayed = 0
        self.hang_detections = 0
        self.overhead_seconds = 0.0
        self._ewma: Optional[float] = None
        #: (iteration, worker) -> failure count this superstep
        self._failures: Dict[Tuple[int, int], int] = {}
        self._pending_corrupt: List = []

    def begin_run(self) -> None:
        """Reset per-run state (counters persist across rollbacks
        within one run, not across runs)."""
        self.worker_respawns = 0
        self.supersteps_replayed = 0
        self.hang_detections = 0
        self.overhead_seconds = 0.0
        self._ewma = None
        self._failures = {}
        self._pending_corrupt = []

    # -- deadlines -------------------------------------------------------
    def deadline(self) -> float:
        """Current per-superstep deadline in wall seconds."""
        cfg = self.config
        if self._ewma is None:
            return cfg.deadline_floor
        return max(cfg.deadline_floor, cfg.deadline_factor * self._ewma)

    def observe(self, wall_seconds: float) -> None:
        """Feed one observed per-worker superstep wall time."""
        a = self.config.ewma_alpha
        if self._ewma is None:
            self._ewma = wall_seconds
        else:
            self._ewma = a * wall_seconds + (1.0 - a) * self._ewma

    # -- escalation bookkeeping -----------------------------------------
    def record_failure(self, iteration: int, worker: int) -> int:
        """Count one detected failure; returns the new count for this
        (iteration, worker) superstep."""
        key = (iteration, worker)
        self._failures[key] = self._failures.get(key, 0) + 1
        return self._failures[key]

    def should_escalate(self, iteration: int, worker: int) -> bool:
        """True when the respawn path is exhausted for this superstep:
        the same superstep died twice, or the run's respawn budget is
        spent — convert to the DeviceLostError rollback path."""
        if self._failures.get((iteration, worker), 0) >= 2:
            return True
        return self.worker_respawns >= self.config.max_respawns

    # -- replay shadow ---------------------------------------------------
    def capture_shadow(self, problem, gpu_indices) -> Dict[int, dict]:
        """Copy the dispatched GPUs' slice arrays before the superstep.

        A crashed worker may have written half its shm window; replay
        must start from the pre-superstep state, not torn state.
        """
        t0 = time.perf_counter()
        shadow: Dict[int, dict] = {}
        for g in gpu_indices:
            ds = problem.data_slices[g]
            shadow[g] = {
                name: np.array(arr.view(np.ndarray), copy=True)
                for name, arr in ds.arrays.items()
            }
        self.overhead_seconds += time.perf_counter() - t0
        return shadow

    def restore_shadow(self, problem, shadow: Dict[int, dict],
                       gpu_indices) -> None:
        """Write the shadow copies back into the shm slice windows."""
        t0 = time.perf_counter()
        for g in gpu_indices:
            ds = problem.data_slices[g]
            for name, saved in shadow[g].items():
                arr = ds.arrays.get(name)
                if arr is not None and arr.shape == saved.shape:
                    arr.view(np.ndarray)[...] = saved
        self.overhead_seconds += time.perf_counter() - t0

    # -- shm integrity ---------------------------------------------------
    def verify_replies(self, problem, replies: Dict[int, dict],
                       iteration: int) -> List[int]:
        """Recompute slice checksums against the workers' digests.

        Returns the GPU indices whose windows fail verification (empty
        when clean or checksums are disabled).
        """
        if not self.config.shm_checksums:
            return []
        t0 = time.perf_counter()
        bad: List[int] = []
        for g, side in sorted(replies.items()):
            want = side.get("shmsum")
            if want is None:
                continue
            if slice_checksum(problem.data_slices[g]) != want:
                bad.append(g)
        self.overhead_seconds += time.perf_counter() - t0
        return bad

    def integrity_error(self, gpu: int, iteration: int) -> ShmIntegrityError:
        return ShmIntegrityError(
            "shared-memory slice window failed its per-barrier checksum",
            gpu_id=gpu, iteration=iteration, site="supervise.checksum",
        )

    # -- host-level fault delivery --------------------------------------
    def deliver_due_host_faults(
        self, backend, enactor, iteration, only_gpus=None
    ) -> None:
        """Deliver due host-level faults to the real worker pool.

        ``worker-crash`` → SIGKILL the owning worker; ``worker-hang`` →
        SIGSTOP it (detection kills + respawns it, which doubles as the
        resume); ``shm-corrupt`` is deferred until the replies are in,
        then flips a byte in the victim window (see
        :meth:`deliver_pending_corruption`).  Consumed parent-side only
        — worker forks never see host specs fire.  ``only_gpus``
        restricts delivery to one worker's bucket (replay re-delivery:
        a second spec must strike the *replacement*, not burn against a
        different worker that is already being handled).
        """
        inj = enactor.machine.faults
        if inj is None or backend._workers is None:
            return
        from ..sim.faults import SHM_CORRUPT, WORKER_CRASH, WORKER_HANG
        t0 = time.perf_counter()
        for spec in inj.take_due_host_faults(iteration, only_gpus=only_gpus):
            if spec.kind == SHM_CORRUPT:
                self._pending_corrupt.append(spec)
                continue
            w = backend._owner.get(spec.gpu)
            if w is None:
                continue
            proc = backend._workers[w][0]
            try:
                if spec.kind == WORKER_CRASH:
                    os.kill(proc.pid, signal.SIGKILL)
                elif spec.kind == WORKER_HANG:
                    os.kill(proc.pid, signal.SIGSTOP)
            except (ProcessLookupError, OSError):
                pass  # already dead; detection handles it either way
        self.overhead_seconds += time.perf_counter() - t0

    def deliver_pending_corruption(self, problem) -> None:
        """Flip one byte in each pending victim's slice window.

        Runs after all replies are received and before checksum
        verification — modelling a non-owner scribbling on the window
        between the owner's last write and the barrier.
        """
        while self._pending_corrupt:
            spec = self._pending_corrupt.pop(0)
            ds = problem.data_slices[spec.gpu]
            for name in sorted(ds.arrays):
                base = ds.arrays[name].view(np.ndarray)
                if base.nbytes == 0:
                    continue
                raw = base.reshape(-1).view(np.uint8)
                raw[len(raw) // 2] ^= 0xFF
                break

    # -- observability ---------------------------------------------------
    def emit(self, type_: str, vt: float, **fields) -> None:
        """Emit a supervisor event to the tracer and flight recorder."""
        if self.tracer is not None:
            self.tracer.instant(type_, vt=vt, **fields)
        if self.recorder is not None:
            self.recorder.record(type_, vt=vt, **fields)
