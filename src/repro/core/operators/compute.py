"""Compute operator: apply an elementwise operation to a frontier.

"Computation executes an operation on all elements in the current
frontier.  This can be combined for efficiency with advance or filter."
(Section II-B.)  Primitives pass vectorized callables; the stats charge
one read-modify-write per element.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from ..stats import OpStats

__all__ = ["compute_op", "segment_reduce_min", "segment_reduce_sum"]


def compute_op(
    frontier: np.ndarray,
    fn: Callable[[np.ndarray], None],
    bytes_per_element: int = 12,
    name: str = "compute",
    atomic: bool = False,
    tracer=None,
) -> Tuple[np.ndarray, OpStats]:
    """Run ``fn`` over the frontier (in-place side effects expected).

    Returns the (unchanged) frontier and the op stats.  ``atomic=True``
    charges one atomic per element (e.g. PR's rank accumulation).
    """
    _wall0 = tracer.wall() if tracer is not None else 0.0
    frontier = np.asarray(frontier, dtype=np.int64)
    fn(frontier)
    stats = OpStats(
        name=name,
        input_size=int(frontier.size),
        output_size=int(frontier.size),
        vertices_processed=int(frontier.size),
        launches=0,  # fused into the surrounding advance/filter
        random_bytes=frontier.size * bytes_per_element,
        atomic_ops=float(frontier.size) if atomic else 0.0,
    )
    if tracer is not None:
        tracer.op_wall_sample(name, tracer.wall() - _wall0)
    return frontier, stats


def segment_reduce_min(
    keys: np.ndarray, values: np.ndarray, out: np.ndarray
) -> np.ndarray:
    """``out[k] = min(out[k], min of values with key k)`` — vectorized.

    This is the deterministic equivalent of the GPU's ``atomicMin`` loop
    in the paper's ``Expand_Incoming_Kernel`` (Appendix A): when one GPU
    receives updates for the same vertex from several peers, the combiner
    keeps the minimum.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        return out
    np.minimum.at(out, keys, values)
    return out


def segment_reduce_sum(
    keys: np.ndarray, values: np.ndarray, out: np.ndarray
) -> np.ndarray:
    """``out[k] += sum of values with key k`` — PR's atomicAdd combiner."""
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        return out
    np.add.at(out, keys, values)
    return out
