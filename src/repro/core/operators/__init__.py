"""Gunrock-style frontier operators: advance, filter, compute, fusion."""

from .advance import advance_pull, advance_push, gather_neighbors
from .compute import compute_op, segment_reduce_min, segment_reduce_sum
from .filter import filter_predicate, filter_unvisited, unique_vertices
from .fused import fused_advance_filter

__all__ = [
    "advance_push",
    "advance_pull",
    "gather_neighbors",
    "filter_predicate",
    "filter_unvisited",
    "unique_vertices",
    "fused_advance_filter",
    "compute_op",
    "segment_reduce_min",
    "segment_reduce_sum",
]
