"""Advance operator: visit the neighbors of a frontier.

Gunrock's advance "generates a new frontier by visiting the neighbors of
the current frontier" (Section II-B).  Two parallelization modes matter to
the paper:

* :func:`advance_push` — the classic per-*edge* parallel advance: every
  neighbor of every frontier vertex is produced.  W = O(edges gathered).
* :func:`advance_pull` — the per-*vertex* mode added in Section VI-A for
  direction-optimizing traversal: each candidate vertex scans its
  neighbor list *serially* and stops at the first neighbor found in the
  frontier ("edge skipping").  W = O(edges actually scanned), which can be
  far below the candidate vertices' total degree.

Both return real arrays (correctness) plus an :class:`OpStats`
(cost-model input).  All segment processing is vectorized; the pull-mode
first-hit search uses ``np.minimum.reduceat`` over masked positions.

Hot-path allocation discipline: CSR structure is indexed through the
graph's cached int64 views (``csr.offsets64``/``csr.cols64`` — no per-call
``astype`` copy), and when the caller passes a per-GPU
:class:`~repro.core.workspace.Workspace` the edge-length scratch
(flattened edge indices, gathered neighbor lists, pull-scan masks) is
written into reused arena buffers instead of fresh allocations.  The
``ws is None`` branches keep the allocating fallback for detached callers
(baselines, unit tests); results are bit-identical either way.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ...graph.csr import CsrGraph
from ..kernels import active as _kernels_active, plain_arrays as _plain
from ..stats import OpStats
from ..workspace import Workspace

__all__ = ["gather_neighbors", "advance_push", "advance_pull"]

_BIG = np.iinfo(np.int64).max


def _push_stats(nf: int, edges: int, ids_bytes: int, size_bytes: int) -> OpStats:
    """The push-advance cost model, shared by the interpreted and
    compiled paths (and by the fused operator) so stats stay
    bit-identical no matter which computed the arrays."""
    return OpStats(
        name="advance",
        input_size=nf,
        output_size=edges,
        edges_visited=edges,
        vertices_processed=nf,
        launches=1,
        streaming_bytes=(nf + edges) * ids_bytes,
        random_bytes=2 * nf * size_bytes
        + edges * (ids_bytes + 0.75 * size_bytes),
    )


def _pull_stats_empty(n_candidates: int, ids_bytes: int) -> OpStats:
    return OpStats(
        name="advance-pull",
        input_size=n_candidates,
        vertices_processed=n_candidates,
        launches=1,
        streaming_bytes=n_candidates * ids_bytes,
        random_bytes=2 * n_candidates * ids_bytes,
    )


def _pull_stats(
    n_candidates: int,
    n_discovered: int,
    edges_scanned: int,
    ids_bytes: int,
    size_bytes: int,
) -> OpStats:
    return OpStats(
        name="advance-pull",
        input_size=n_candidates,
        output_size=n_discovered,
        edges_visited=edges_scanned,
        vertices_processed=n_candidates,
        launches=1,
        streaming_bytes=(n_candidates + n_discovered) * ids_bytes,
        random_bytes=2 * n_candidates * size_bytes
        + edges_scanned * (ids_bytes + 0.75 * size_bytes + 1),
    )


def _frontier64(frontier: np.ndarray) -> np.ndarray:
    """The frontier as int64, without copying already-converted input."""
    frontier = np.asarray(frontier)
    if frontier.dtype == np.int64:
        return frontier
    return frontier.astype(np.int64)


def gather_neighbors(
    csr: CsrGraph, frontier: np.ndarray, ws: Optional[Workspace] = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather all out-neighbors of ``frontier``.

    Returns ``(neighbors, sources, edge_indices)``, each of length equal
    to the total degree of the frontier.  ``sources[k]`` is the frontier
    vertex whose edge produced ``neighbors[k]`` and ``edge_indices[k]`` is
    that edge's position in ``csr.col_indices`` (for weight lookup).

    With a workspace, ``neighbors`` and ``edge_indices`` are views into
    the arena — valid until the next gather on the same GPU; callers must
    consume them within the operator call chain.
    """
    frontier = _frontier64(frontier)
    kernels = _kernels_active()
    if kernels is not None and _plain(frontier):
        return kernels.gather(csr.offsets64, csr.cols64, frontier)
    offsets = csr.offsets64
    starts = offsets[frontier]
    counts = offsets[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    # flattened edge indices: repeat(start - exclusive_prefix) + arange
    seg_base = np.repeat(starts + counts - np.cumsum(counts), counts)
    if ws is None:
        edge_idx = seg_base + np.arange(total, dtype=np.int64)
        neighbors = csr.cols64[edge_idx]
    else:
        edge_idx = ws.take("advance.edge_idx", total, np.int64)
        np.add(seg_base, ws.iota(total), out=edge_idx)
        neighbors = np.take(
            csr.cols64, edge_idx, out=ws.take("advance.neighbors", total, np.int64)
        )
    sources = np.repeat(frontier, counts)
    return neighbors, sources, edge_idx


def advance_push(
    csr: CsrGraph,
    frontier: np.ndarray,
    ids_bytes: int = 4,
    ws: Optional[Workspace] = None,
    tracer=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, OpStats]:
    """Per-edge parallel advance (the standard forward traversal).

    Returns ``(neighbors, sources, edge_indices, stats)``.

    Traffic model: frontier read + output write are streaming; offset
    lookups and neighbor-list gathers are random.  Per traversed edge the
    kernel moves one column index (``VertexT``) plus load-balancing /
    edge-offset data at ``SizeT`` width — the term that makes 64-bit edge
    IDs slower (Table V: "reads 2x data per edge").

    ``tracer`` (optional) samples the call's wall-clock cost into the
    per-operator profile; it never changes results.
    """
    _wall0 = tracer.wall() if tracer is not None else 0.0
    neighbors, sources, edge_idx = gather_neighbors(csr, frontier, ws=ws)
    edges = int(neighbors.size)
    nf = int(np.asarray(frontier).size)
    stats = _push_stats(nf, edges, ids_bytes, csr.ids.size_bytes)
    if tracer is not None:
        tracer.op_wall_sample("advance", tracer.wall() - _wall0)
    return neighbors, sources, edge_idx, stats


def advance_pull(
    csr: CsrGraph,
    candidates: np.ndarray,
    in_frontier: np.ndarray,
    ids_bytes: int = 4,
    ws: Optional[Workspace] = None,
    tracer=None,
) -> Tuple[np.ndarray, np.ndarray, OpStats]:
    """Per-vertex pull advance with edge skipping (Section VI-A).

    Parameters
    ----------
    csr:
        The graph; for the paper's undirected datasets the out-adjacency
        doubles as the in-adjacency, which is what backward traversal
        scans.
    candidates:
        Vertices looking for a parent (the unvisited set).
    in_frontier:
        Boolean mask over vertices: membership in the current frontier.
    ws:
        Optional per-GPU scratch arena for the edge-length temporaries.

    Returns
    -------
    discovered, parents, stats:
        ``discovered`` are the candidates that found a parent in the
        frontier; ``parents[k]`` is the first such neighbor (serial-scan
        order, deterministic).  ``stats.edges_visited`` counts only edges
        actually *scanned* — a candidate stops at its first hit, which is
        the entire point of direction-optimization.
    """
    _wall0 = tracer.wall() if tracer is not None else 0.0
    candidates = _frontier64(candidates)
    kernels = _kernels_active()
    if kernels is not None and _plain(candidates, in_frontier):
        discovered, parents, edges_scanned, total = kernels.pull(
            csr.offsets64, csr.cols64, candidates, in_frontier
        )
        if total == 0:
            stats = _pull_stats_empty(int(candidates.size), ids_bytes)
        else:
            stats = _pull_stats(
                int(candidates.size), int(discovered.size),
                int(edges_scanned), ids_bytes, csr.ids.size_bytes,
            )
        if tracer is not None:
            tracer.op_wall_sample("advance-pull", tracer.wall() - _wall0)
        return discovered, parents, stats
    offsets = csr.offsets64
    starts = offsets[candidates]
    counts = offsets[candidates + 1] - starts
    nonzero = counts > 0
    cand = candidates[nonzero]
    starts_nz = starts[nonzero]
    counts_nz = counts[nonzero]
    total = int(counts_nz.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        stats = _pull_stats_empty(int(candidates.size), ids_bytes)
        if tracer is not None:
            tracer.op_wall_sample("advance-pull", tracer.wall() - _wall0)
        return empty, empty.copy(), stats

    seg_starts = np.concatenate([[0], np.cumsum(counts_nz)[:-1]])
    seg_base = np.repeat(starts_nz - seg_starts, counts_nz)
    pos_base = np.repeat(seg_starts, counts_nz)
    if ws is None:
        edge_idx = seg_base + np.arange(total, dtype=np.int64)
        neighbors = csr.cols64[edge_idx]
        hit = in_frontier[neighbors]
        # position of each slot within its segment; masked to BIG where
        # no hit
        pos = np.arange(total, dtype=np.int64) - pos_base
        masked = np.where(hit, pos, _BIG)
    else:
        iota = ws.iota(total)
        edge_idx = ws.take("pull.edge_idx", total, np.int64)
        np.add(seg_base, iota, out=edge_idx)
        neighbors = np.take(
            csr.cols64, edge_idx, out=ws.take("pull.neighbors", total, np.int64)
        )
        hit = np.take(
            in_frontier, neighbors, out=ws.take("pull.hit", total, bool)
        )
        pos = ws.take("pull.pos", total, np.int64)
        np.subtract(iota, pos_base, out=pos)
        masked = ws.take("pull.masked", total, np.int64)
        masked.fill(_BIG)
        np.copyto(masked, pos, where=hit)
    first_hit = np.minimum.reduceat(masked, seg_starts)
    found = first_hit != _BIG
    discovered = cand[found]
    parents = neighbors[seg_starts[found] + first_hit[found]]
    # edges scanned: first_hit+1 where found, full degree otherwise
    scanned = np.where(found, first_hit + 1, counts_nz)
    edges_scanned = int(scanned.sum())
    stats = _pull_stats(
        int(candidates.size), int(discovered.size), edges_scanned,
        ids_bytes, csr.ids.size_bytes,
    )
    if tracer is not None:
        tracer.op_wall_sample("advance-pull", tracer.wall() - _wall0)
    return discovered, parents, stats
