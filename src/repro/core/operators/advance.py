"""Advance operator: visit the neighbors of a frontier.

Gunrock's advance "generates a new frontier by visiting the neighbors of
the current frontier" (Section II-B).  Two parallelization modes matter to
the paper:

* :func:`advance_push` — the classic per-*edge* parallel advance: every
  neighbor of every frontier vertex is produced.  W = O(edges gathered).
* :func:`advance_pull` — the per-*vertex* mode added in Section VI-A for
  direction-optimizing traversal: each candidate vertex scans its
  neighbor list *serially* and stops at the first neighbor found in the
  frontier ("edge skipping").  W = O(edges actually scanned), which can be
  far below the candidate vertices' total degree.

Both return real arrays (correctness) plus an :class:`OpStats`
(cost-model input).  All segment processing is vectorized; the pull-mode
first-hit search uses ``np.minimum.reduceat`` over masked positions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ...graph.csr import CsrGraph
from ..stats import OpStats

__all__ = ["gather_neighbors", "advance_push", "advance_pull"]

_BIG = np.iinfo(np.int64).max


def gather_neighbors(
    csr: CsrGraph, frontier: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather all out-neighbors of ``frontier``.

    Returns ``(neighbors, sources, edge_indices)``, each of length equal
    to the total degree of the frontier.  ``sources[k]`` is the frontier
    vertex whose edge produced ``neighbors[k]`` and ``edge_indices[k]`` is
    that edge's position in ``csr.col_indices`` (for weight lookup).
    """
    frontier = np.asarray(frontier, dtype=np.int64)
    offsets = csr.row_offsets.astype(np.int64)
    starts = offsets[frontier]
    counts = offsets[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    # flattened edge indices: repeat(start - exclusive_prefix) + arange
    edge_idx = np.repeat(starts + counts - np.cumsum(counts), counts) + np.arange(
        total, dtype=np.int64
    )
    neighbors = csr.col_indices[edge_idx].astype(np.int64)
    sources = np.repeat(frontier, counts)
    return neighbors, sources, edge_idx


def advance_push(
    csr: CsrGraph,
    frontier: np.ndarray,
    ids_bytes: int = 4,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, OpStats]:
    """Per-edge parallel advance (the standard forward traversal).

    Returns ``(neighbors, sources, edge_indices, stats)``.

    Traffic model: frontier read + output write are streaming; offset
    lookups and neighbor-list gathers are random.  Per traversed edge the
    kernel moves one column index (``VertexT``) plus load-balancing /
    edge-offset data at ``SizeT`` width — the term that makes 64-bit edge
    IDs slower (Table V: "reads 2x data per edge").
    """
    neighbors, sources, edge_idx = gather_neighbors(csr, frontier)
    edges = int(neighbors.size)
    nf = int(np.asarray(frontier).size)
    size_bytes = csr.ids.size_bytes
    stats = OpStats(
        name="advance",
        input_size=nf,
        output_size=edges,
        edges_visited=edges,
        vertices_processed=nf,
        launches=1,
        streaming_bytes=(nf + edges) * ids_bytes,
        random_bytes=2 * nf * size_bytes
        + edges * (ids_bytes + 0.75 * size_bytes),
    )
    return neighbors, sources, edge_idx, stats


def advance_pull(
    csr: CsrGraph,
    candidates: np.ndarray,
    in_frontier: np.ndarray,
    ids_bytes: int = 4,
) -> Tuple[np.ndarray, np.ndarray, OpStats]:
    """Per-vertex pull advance with edge skipping (Section VI-A).

    Parameters
    ----------
    csr:
        The graph; for the paper's undirected datasets the out-adjacency
        doubles as the in-adjacency, which is what backward traversal
        scans.
    candidates:
        Vertices looking for a parent (the unvisited set).
    in_frontier:
        Boolean mask over vertices: membership in the current frontier.

    Returns
    -------
    discovered, parents, stats:
        ``discovered`` are the candidates that found a parent in the
        frontier; ``parents[k]`` is the first such neighbor (serial-scan
        order, deterministic).  ``stats.edges_visited`` counts only edges
        actually *scanned* — a candidate stops at its first hit, which is
        the entire point of direction-optimization.
    """
    candidates = np.asarray(candidates, dtype=np.int64)
    offsets = csr.row_offsets.astype(np.int64)
    starts = offsets[candidates]
    counts = offsets[candidates + 1] - starts
    nonzero = counts > 0
    cand = candidates[nonzero]
    starts_nz = starts[nonzero]
    counts_nz = counts[nonzero]
    total = int(counts_nz.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        stats = OpStats(
            name="advance-pull",
            input_size=int(candidates.size),
            vertices_processed=int(candidates.size),
            launches=1,
            streaming_bytes=candidates.size * ids_bytes,
            random_bytes=2 * candidates.size * ids_bytes,
        )
        return empty, empty.copy(), stats

    seg_starts = np.concatenate([[0], np.cumsum(counts_nz)[:-1]])
    edge_idx = np.repeat(starts_nz - seg_starts, counts_nz) + np.arange(
        total, dtype=np.int64
    )
    neighbors = csr.col_indices[edge_idx].astype(np.int64)
    hit = in_frontier[neighbors]
    # position of each slot within its segment; masked to BIG where no hit
    pos = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, counts_nz)
    masked = np.where(hit, pos, _BIG)
    first_hit = np.minimum.reduceat(masked, seg_starts)
    found = first_hit != _BIG
    discovered = cand[found]
    parents = neighbors[seg_starts[found] + first_hit[found]]
    # edges scanned: first_hit+1 where found, full degree otherwise
    scanned = np.where(found, first_hit + 1, counts_nz)
    edges_scanned = int(scanned.sum())
    stats = OpStats(
        name="advance-pull",
        input_size=int(candidates.size),
        output_size=int(discovered.size),
        edges_visited=edges_scanned,
        vertices_processed=int(candidates.size),
        launches=1,
        streaming_bytes=(candidates.size + discovered.size) * ids_bytes,
        random_bytes=2 * candidates.size * csr.ids.size_bytes
        + edges_scanned * (ids_bytes + 0.75 * csr.ids.size_bytes + 1),
    )
    return discovered, parents, stats
