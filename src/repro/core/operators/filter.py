"""Filter operator: compact a frontier by a predicate.

"Filter generates a new frontier by selecting a subset of the current
frontier based on programmer-specified criteria" (Section II-B).  The
common traversal filter — keep each vertex once, and only if unvisited —
is provided as a specialized fast path because its cost model (one label
probe per candidate, atomic claim per survivor) is what BFS/SSSP charge.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from ..kernels import active as _kernels_active, plain_arrays as _plain
from ..stats import OpStats

__all__ = ["filter_predicate", "filter_unvisited", "unique_vertices"]


def _unvisited_stats(n_in: int, n_out: int, ids_bytes: int) -> OpStats:
    """The unvisited-filter cost model, shared by the interpreted and
    compiled paths and by the fused operator."""
    return OpStats(
        name="filter",
        input_size=n_in,
        output_size=n_out,
        vertices_processed=n_in,
        launches=1,
        streaming_bytes=(n_in + n_out) * ids_bytes,
        random_bytes=n_in * ids_bytes,
        atomic_ops=float(n_out),
    )


def filter_predicate(
    frontier: np.ndarray,
    predicate: Callable[[np.ndarray], np.ndarray],
    ids_bytes: int = 4,
    name: str = "filter",
    tracer=None,
) -> Tuple[np.ndarray, OpStats]:
    """Generic filter: keep elements where ``predicate`` is True.

    ``predicate`` receives the whole array and must return a boolean mask
    (vectorized, like every framework compute op).
    """
    _wall0 = tracer.wall() if tracer is not None else 0.0
    frontier = np.asarray(frontier, dtype=np.int64)
    mask = np.asarray(predicate(frontier), dtype=bool)
    if mask.shape != frontier.shape:
        raise ValueError("predicate must return a mask of the input shape")
    out = frontier[mask]
    stats = OpStats(
        name=name,
        input_size=int(frontier.size),
        output_size=int(out.size),
        vertices_processed=int(frontier.size),
        launches=1,
        streaming_bytes=(frontier.size + out.size) * ids_bytes,
        random_bytes=frontier.size * ids_bytes,
    )
    if tracer is not None:
        tracer.op_wall_sample(name, tracer.wall() - _wall0)
    return out, stats


def filter_unvisited(
    candidates: np.ndarray,
    labels: np.ndarray,
    invalid_label,
    ids_bytes: int = 4,
    tracer=None,
) -> Tuple[np.ndarray, OpStats]:
    """Traversal filter: deduplicate and keep vertices with no label yet.

    Mirrors the GPU idiom: probe the label array, attempt an atomic claim,
    survivors enter the new frontier exactly once.  Deterministic here:
    ``np.unique`` plays the role the atomic CAS race plays on hardware.
    """
    _wall0 = tracer.wall() if tracer is not None else 0.0
    candidates = np.asarray(candidates, dtype=np.int64)
    kernels = _kernels_active()
    if candidates.size:
        if kernels is not None and _plain(candidates, labels):
            out = kernels.filter_unvisited(candidates, labels, invalid_label)
        else:
            unvisited = candidates[labels[candidates] == invalid_label]
            out = np.unique(unvisited)
    else:
        out = candidates
    stats = _unvisited_stats(int(candidates.size), int(out.size), ids_bytes)
    if tracer is not None:
        tracer.op_wall_sample("filter", tracer.wall() - _wall0)
    return out, stats


def unique_vertices(
    candidates: np.ndarray, ids_bytes: int = 4
) -> Tuple[np.ndarray, OpStats]:
    """Deduplicate a vertex list (the paper's split/merge helper)."""
    candidates = np.asarray(candidates, dtype=np.int64)
    out = np.unique(candidates)
    stats = OpStats(
        name="unique",
        input_size=int(candidates.size),
        output_size=int(out.size),
        vertices_processed=int(candidates.size),
        launches=1,
        streaming_bytes=2 * candidates.size * ids_bytes,
    )
    return out, stats
