"""Fused advance+filter (kernel fusion, Section VI-C).

Fusing an advance with the filter that follows it has three effects the
paper calls out, all reproduced here:

1. one kernel launch instead of two (less launch overhead);
2. producer-consumer locality — the intermediate neighbor list is consumed
   in registers/shared memory, so its streaming write+read disappears from
   the traffic model;
3. **no intermediate O(|E|) frontier buffer in device memory**, which is
   the memory-footprint win that lets larger subgraphs fit per GPU
   (Fig. 3 "prealloc+fusion").

The unfused path must materialize the advance output (the enactor sizes an
``intermediate`` buffer for it); the fused path never does.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ...graph.csr import CsrGraph
from ..kernels import active as _kernels_active, plain_arrays as _plain
from ..stats import OpStats
from ..workspace import Workspace
from .advance import _frontier64, _push_stats, advance_push
from .filter import _unvisited_stats, filter_unvisited

__all__ = ["fused_advance_filter", "first_witness"]


def first_witness(
    neighbors: np.ndarray,
    sources: np.ndarray,
    edge_idx: np.ndarray,
    survivors: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """For each survivor, the (source, edge) of its first discovery.

    "First" is by lowest edge index — a deterministic stand-in for the
    GPU's atomic race, used for predecessor marking.
    """
    if survivors.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    order = np.argsort(neighbors, kind="stable")
    sorted_nbrs = neighbors[order]
    first_pos = order[np.searchsorted(sorted_nbrs, survivors, side="left")]
    return sources[first_pos], edge_idx[first_pos]


def fused_advance_filter(
    csr: CsrGraph,
    frontier: np.ndarray,
    labels: np.ndarray,
    invalid_label,
    ids_bytes: int = 4,
    ws: Optional[Workspace] = None,
    tracer=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, OpStats]:
    """Advance then unvisited-filter as one fused kernel.

    Returns ``(survivors, their_sources, their_edge_indices, stats)`` where
    sources/edge indices correspond to the first edge that discovered each
    surviving vertex (deterministic: lowest edge index wins, matching the
    serialized-atomics tie-break of a GPU run re-executed for
    reproducibility).
    """
    # the inner calls are NOT traced individually: one fused kernel means
    # one wall-clock sample under the fused name
    _wall0 = tracer.wall() if tracer is not None else 0.0
    kernels = _kernels_active()
    if kernels is not None and _plain(labels):
        frontier = _frontier64(frontier)
        if _plain(frontier):
            survivors, w_sources, w_edges, edges = kernels.fused(
                csr.offsets64, csr.cols64, frontier, labels, invalid_label
            )
            a_stats = _push_stats(
                int(frontier.size), int(edges), ids_bytes, csr.ids.size_bytes
            )
            f_stats = _unvisited_stats(
                int(edges), int(survivors.size), ids_bytes
            )
            stats = a_stats.merged_with(f_stats, fused=True)
            stats.name = "advance+filter(fused)"
            stats.streaming_bytes = max(
                0.0, stats.streaming_bytes - 2 * int(edges) * ids_bytes
            )
            if tracer is not None:
                tracer.op_wall_sample(
                    "advance+filter(fused)", tracer.wall() - _wall0
                )
            return survivors, w_sources, w_edges, stats
    neighbors, sources, edge_idx, a_stats = advance_push(
        csr, frontier, ids_bytes=ids_bytes, ws=ws
    )
    survivors, f_stats = filter_unvisited(
        neighbors, labels, invalid_label, ids_bytes=ids_bytes
    )
    # recover one (source, edge) witness per survivor: first occurrence
    w_sources, w_edges = first_witness(neighbors, sources, edge_idx, survivors)

    stats = a_stats.merged_with(f_stats, fused=True)
    stats.name = "advance+filter(fused)"
    # fusion removes the intermediate write+read of the neighbor list
    stats.streaming_bytes = max(
        0.0, stats.streaming_bytes - 2 * neighbors.size * ids_bytes
    )
    if tracer is not None:
        tracer.op_wall_sample("advance+filter(fused)", tracer.wall() - _wall0)
    return survivors, w_sources, w_edges, stats
