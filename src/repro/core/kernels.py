"""Opt-in compiled hot-loop kernels (Numba njit, NumPy fallback).

The operator hot paths — advance (push & pull), the unvisited filter and
the fused advance+filter — are loop-free vectorized NumPy by contract
(lint rule REP104), which also makes them *trivially compilable*: each
is a textbook CSR traversal loop.  This module provides nopython-JIT
versions of exactly those four inner computations, behind the existing
operator interface: :mod:`repro.core.operators` consults
:func:`active` at the top of each call and, when a compiled layer is
live, delegates only the array computation to it.  The surrounding
:class:`~repro.core.stats.OpStats` cost accounting is built from the
same sizes in both paths, so a compiled run is **bit-identical** to an
interpreted one — results, RunMetrics, and virtual times (asserted in
``tests/core/test_backend_determinism.py``).

Numba is an *optional* extra (``pip install repro[kernels]``).  When it
is absent, :func:`enable` is a semantic no-op: the operators keep their
vectorized NumPy implementations and :func:`status` reports
``backend == "numpy-fallback"`` so benches can tell the difference.
The compiled functions below mirror the NumPy semantics exactly:

* ``gather`` flattens CSR rows in frontier order (``np.repeat`` +
  ``cumsum`` in the interpreted path);
* ``pull`` scans each candidate's neighbor list serially and stops at
  the first frontier hit (``np.minimum.reduceat`` over masked
  positions interpreted), counting only scanned edges;
* ``filter_unvisited`` sorts and deduplicates the unvisited survivors
  (``np.unique`` interpreted);
* ``fused`` records, per surviving vertex, the witness of its *first*
  discovery in gather order (stable argsort + ``searchsorted``
  interpreted).

Enabling is process-global (``repro.core.kernels.enable()``, the
``--kernels`` CLI flag, or ``REPRO_KERNELS=1``); worker processes of the
``processes`` backend inherit the setting through ``fork``.  The
sanitizer's shadow arrays need the interpreted instrumentation, so
operators skip the compiled path whenever an input is an ndarray
subclass (``Enactor(sanitize=True)``).
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

__all__ = [
    "enable",
    "disable",
    "is_enabled",
    "active",
    "status",
    "HAVE_NUMBA",
]


def _numba_available() -> bool:
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


HAVE_NUMBA = _numba_available()


# ----------------------------------------------------------------------
# kernel bodies (plain Python; compiled with numba.njit on enable).
# All vertex/edge arrays are int64 — the operators already normalize
# through csr.offsets64/cols64 and _frontier64.
def _gather_kernel(offsets, cols, frontier):
    nf = frontier.shape[0]
    total = 0
    for i in range(nf):
        v = frontier[i]
        total += offsets[v + 1] - offsets[v]
    neighbors = np.empty(total, np.int64)
    sources = np.empty(total, np.int64)
    edge_idx = np.empty(total, np.int64)
    k = 0
    for i in range(nf):
        v = frontier[i]
        for e in range(offsets[v], offsets[v + 1]):
            neighbors[k] = cols[e]
            sources[k] = v
            edge_idx[k] = e
            k += 1
    return neighbors, sources, edge_idx


def _pull_kernel(offsets, cols, candidates, in_frontier):
    n = candidates.shape[0]
    discovered = np.empty(n, np.int64)
    parents = np.empty(n, np.int64)
    m = 0
    scanned = 0
    total = 0
    for i in range(n):
        v = candidates[i]
        start = offsets[v]
        end = offsets[v + 1]
        total += end - start
        looked = 0
        for e in range(start, end):
            looked += 1
            nbr = cols[e]
            if in_frontier[nbr]:
                discovered[m] = v
                parents[m] = nbr
                m += 1
                break
        # scanned = first_hit + 1 on a hit, full degree otherwise —
        # `looked` is both (the loop breaks on the hit)
        scanned += looked
    return discovered[:m].copy(), parents[:m].copy(), scanned, total


def _filter_unvisited_kernel(candidates, labels, invalid_label):
    n = candidates.shape[0]
    keep = np.empty(n, np.int64)
    m = 0
    for i in range(n):
        v = candidates[i]
        if labels[v] == invalid_label:
            keep[m] = v
            m += 1
    kept = np.sort(keep[:m])
    out = np.empty(m, np.int64)
    k = 0
    for i in range(m):
        if i == 0 or kept[i] != kept[i - 1]:
            out[k] = kept[i]
            k += 1
    return out[:k].copy()


def _fused_kernel(offsets, cols, frontier, labels, invalid_label):
    num_vertices = labels.shape[0]
    # per-vertex witness of the first discovery in gather order; edge -1
    # doubles as the "not discovered" marker
    witness_src = np.full(num_vertices, -1, np.int64)
    witness_edge = np.full(num_vertices, -1, np.int64)
    survivors_count = 0
    edges = 0
    nf = frontier.shape[0]
    for i in range(nf):
        v = frontier[i]
        for e in range(offsets[v], offsets[v + 1]):
            edges += 1
            nbr = cols[e]
            if labels[nbr] == invalid_label and witness_edge[nbr] < 0:
                witness_src[nbr] = v
                witness_edge[nbr] = e
                survivors_count += 1
    survivors = np.empty(survivors_count, np.int64)
    m = 0
    for u in range(num_vertices):
        if witness_edge[u] >= 0:
            survivors[m] = u
            m += 1
    return survivors, witness_src[survivors], witness_edge[survivors], edges


class CompiledKernels:
    """The live compiled layer: njit-wrapped kernel entry points."""

    backend = "numba"

    def __init__(self, njit):
        self.gather = njit(cache=True)(_gather_kernel)
        self.pull = njit(cache=True)(_pull_kernel)
        self.filter_unvisited = njit(cache=True)(_filter_unvisited_kernel)
        self.fused = njit(cache=True)(_fused_kernel)


_enabled = False
_layer: Optional[CompiledKernels] = None
_error: Optional[str] = None


def enable() -> dict:
    """Turn the compiled layer on (process-global).

    Compiles lazily on first call; with Numba absent this is a no-op for
    semantics (operators keep interpreted NumPy) and :func:`status`
    reports the fallback.  Returns :func:`status`.
    """
    global _enabled, _layer, _error
    _enabled = True
    if _layer is None and _error is None:
        try:
            from numba import njit

            _layer = CompiledKernels(njit)
        except Exception as exc:  # numba absent or broken: NumPy fallback
            _error = f"{type(exc).__name__}: {exc}"
    return status()


def disable() -> None:
    """Turn the compiled layer off (the default)."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    """Whether the compiled-kernel layer is switched on (it may still be
    inactive if Numba is unavailable — see :func:`status`)."""
    return _enabled


def active() -> Optional[CompiledKernels]:
    """The compiled layer if enabled *and* available, else None.

    Operators call this at the top of each hot path; ``None`` means
    "use the interpreted NumPy implementation" (disabled, or the
    NumPy fallback when Numba is absent).
    """
    if not _enabled:
        return None
    return _layer


def plain_arrays(*arrays) -> bool:
    """True when every argument is a plain ndarray (no ShadowArray etc.).

    The compiled kernels bypass Python-level instrumentation, so the
    sanitizer's wrapped slice arrays must take the interpreted path.
    """
    for a in arrays:
        if type(a) is not np.ndarray:
            return False
    return True


def status() -> dict:
    """Current kernel-layer state, for bench JSON and ``status`` CLI."""
    return {
        "enabled": _enabled,
        "available": HAVE_NUMBA,
        "backend": (
            "numba" if (_enabled and _layer is not None)
            else ("numpy-fallback" if _enabled else "off")
        ),
        "error": _error,
    }


if os.environ.get("REPRO_KERNELS", "").strip().lower() not in (
    "", "0", "false", "off", "no",
):
    enable()
