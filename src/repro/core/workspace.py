"""Per-GPU scratch-workspace arena for operator hot paths.

Real Gunrock preallocates its per-GPU scratch (load-balancing scan
outputs, segment offsets, masks) once and reuses it every superstep; a
fresh ``cudaMalloc`` per advance call would serialize the whole pipeline.
Our NumPy hot paths had drifted into exactly that shape — a fresh
``np.arange``/``np.empty``/gather result per operator call — which both
burns allocator time and keeps the Python side busy while worker threads
of the ``threads`` execution backend are trying to overlap (see
``repro.core.backend``).

A :class:`Workspace` is one virtual GPU's arena of named, dtype-tagged,
grow-only buffers:

* :meth:`take` returns a length-``size`` view of the named buffer,
  growing it geometrically (just-enough style: the 1.25 growth factor of
  :class:`~repro.sim.memory.JustEnough`-governed frontiers) when needed;
* :meth:`iota` returns a prefix view of a cached ``arange`` — the
  flattened-CSR-offset computation in advance needs ``0..total`` every
  call and the prefix never changes, so it is computed only on growth.

Workspaces are **per GPU and never shared**: the enactor builds one per
virtual device, so the ``threads`` backend's workers touch disjoint
arenas (property-tested in ``tests/core/test_workspace.py``).  Buffers
hold *scratch consumed within one operator call*; nothing that crosses a
superstep boundary (messages, frontiers, slice arrays) may live here.

The arena is deliberately outside device-memory accounting: it stands in
for the scratch real kernels keep in registers/shared memory and
preallocated temporaries whose cost the kernel model already charges
through ``OpStats``; charging it to the :class:`~repro.sim.memory
.MemoryPool` would perturb the Fig. 3 peak-memory results.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["Workspace"]

#: growth factor for undersized buffers (just-enough's reallocation slack)
_GROWTH = 1.25


class Workspace:
    """Named, grow-only scratch buffers owned by one virtual GPU."""

    def __init__(self, gpu_id: int = 0, initial_items: int = 0):
        self.gpu_id = int(gpu_id)
        self.initial_items = int(initial_items)
        self._bufs: Dict[Tuple[str, object], np.ndarray] = {}
        self._iota: Optional[np.ndarray] = None
        #: satisfied take() calls — each one is an allocation avoided
        #: once the buffer exists
        self.takes = 0
        #: buffer (re)allocations actually performed
        self.grows = 0

    # ------------------------------------------------------------------
    def take(self, name: str, size: int, dtype=np.int64) -> np.ndarray:
        """A length-``size`` scratch view of the named buffer.

        Contents are undefined (like ``np.empty``); the caller must fully
        overwrite the view.  The view is only valid until the next
        ``take`` of the same name — callers must not let it escape the
        operator call that took it.
        """
        dt = np.dtype(dtype)
        key = (name, dt.str)
        buf = self._bufs.get(key)
        self.takes += 1
        if buf is None or buf.size < size:
            cap = max(size, int((0 if buf is None else buf.size) * _GROWTH),
                      self.initial_items, 1)
            buf = np.empty(cap, dtype=dt)
            self._bufs[key] = buf
            self.grows += 1
        return buf[:size]

    def iota(self, size: int) -> np.ndarray:
        """A read-only view of ``arange(size)`` from the cached prefix."""
        cur = self._iota
        if cur is None or cur.size < size:
            cap = max(size, int((0 if cur is None else cur.size) * _GROWTH),
                      self.initial_items, 1)
            cur = np.arange(cap, dtype=np.int64)
            cur.setflags(write=False)
            self._iota = cur
            self.grows += 1
        return cur[:size]

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Bytes currently held by the arena."""
        total = sum(b.nbytes for b in self._bufs.values())
        if self._iota is not None:
            total += self._iota.nbytes
        return int(total)

    def stats(self) -> dict:
        """Counters for the bench harness's allocation accounting."""
        return {
            "takes": self.takes,
            "grows": self.grows,
            "buffers": len(self._bufs) + (self._iota is not None),
            "nbytes": self.nbytes,
        }

    def reset_counters(self) -> None:
        self.takes = 0
        self.grows = 0

    def owns(self, arr: np.ndarray) -> bool:
        """Whether ``arr`` shares memory with any buffer of this arena."""
        for buf in self._bufs.values():
            if np.shares_memory(arr, buf):
                return True
        return self._iota is not None and np.shares_memory(arr, self._iota)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Workspace(gpu={self.gpu_id}, buffers={len(self._bufs)}, "
            f"{self.nbytes / 2**20:.2f} MiB)"
        )
