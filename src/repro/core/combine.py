"""Declared combiners: the framework contract for concurrent updates.

Section III-B makes the programmer specify, for every piece of per-vertex
data a primitive communicates, *how* concurrently-produced updates merge:
BFS min-combines labels, SSSP ``atomicMin``s distances, PR ``atomicAdd``s
rank shares, CC min-combines component IDs.  The framework's correctness
argument — "an unmodified single-GPU primitive stays correct on multiple
GPUs" — holds only when those merge operators are order-independent
across the superstep boundary.

A :class:`Combiner` is that declaration made explicit.  Problems list one
per mutable slice array in :attr:`ProblemBase.combiners`; the static
linter (rule ``undeclared-combiner``) requires the declaration whenever a
primitive registers value associates, and the BSP race sanitizer consults
it at every barrier: write-write conflicts on replicated vertices are
benign exactly when the declared combiner is commutative or idempotent.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Combiner", "MIN", "MAX", "SUM", "ANY", "WITNESS", "OVERWRITE"]


@dataclass(frozen=True)
class Combiner:
    """How concurrent writes to one slice array merge at the barrier.

    Attributes
    ----------
    op:
        Symbolic operator name (``min``, ``sum``, ...), for reports.
    commutative:
        Applying the updates in any order yields the same state.
    idempotent:
        Re-applying an already-applied update is a no-op (lets proxies
        re-send without double counting).
    reason:
        Free-form justification, shown in sanitizer reports.
    """

    op: str
    commutative: bool = True
    idempotent: bool = False
    reason: str = ""

    @property
    def order_independent(self) -> bool:
        """Whether superstep-concurrent writes merged by this combiner are
        race-free under the BSP contract."""
        return self.commutative or self.idempotent

    def describe(self) -> str:
        props = []
        if self.commutative:
            props.append("commutative")
        if self.idempotent:
            props.append("idempotent")
        return f"{self.op}({', '.join(props) or 'order-dependent'})"


#: atomicMin merge — labels, distances, component IDs.
MIN = Combiner("min", commutative=True, idempotent=True)

#: atomicMax merge.
MAX = Combiner("max", commutative=True, idempotent=True)

#: atomicAdd merge — rank shares, sigma/delta accumulation.
SUM = Combiner("sum", commutative=True, idempotent=False)

#: boolean OR merge — frontier-membership bitmaps.
ANY = Combiner("or", commutative=True, idempotent=True)

#: any concurrently-written value is acceptable (e.g. BFS predecessors:
#: every writer is a valid witness of the same BFS level).
WITNESS = Combiner(
    "witness", commutative=True, idempotent=False,
    reason="any valid witness is acceptable",
)

#: last-writer-wins — order-DEPENDENT, the sanitizer flags conflicts.
OVERWRITE = Combiner("overwrite", commutative=False, idempotent=False)
