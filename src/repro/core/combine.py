"""Declared combiners: the framework contract for concurrent updates.

Section III-B makes the programmer specify, for every piece of per-vertex
data a primitive communicates, *how* concurrently-produced updates merge:
BFS min-combines labels, SSSP ``atomicMin``s distances, PR ``atomicAdd``s
rank shares, CC min-combines component IDs.  The framework's correctness
argument — "an unmodified single-GPU primitive stays correct on multiple
GPUs" — holds only when those merge operators are order-independent
across the superstep boundary.

A :class:`Combiner` is that declaration made explicit.  Problems list one
per mutable slice array in :attr:`ProblemBase.combiners`; the static
linter (rule ``undeclared-combiner``) requires the declaration whenever a
primitive registers value associates, and the BSP race sanitizer consults
it at every barrier: write-write conflicts on replicated vertices are
benign exactly when the declared combiner is commutative or idempotent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

__all__ = [
    "Combiner",
    "MIN", "MAX", "SUM", "ANY", "WITNESS", "OVERWRITE",
    "OpSemantics", "op_semantics", "register_op_semantics", "known_ops",
    "INT_DOMAIN", "BOOL_DOMAIN",
]


@dataclass(frozen=True)
class Combiner:
    """How concurrent writes to one slice array merge at the barrier.

    Attributes
    ----------
    op:
        Symbolic operator name (``min``, ``sum``, ...), for reports.
    commutative:
        Applying the updates in any order yields the same state.
    idempotent:
        Re-applying an already-applied update is a no-op (lets proxies
        re-send without double counting).
    reason:
        Free-form justification, shown in sanitizer reports.
    """

    op: str
    commutative: bool = True
    idempotent: bool = False
    reason: str = ""

    @property
    def order_independent(self) -> bool:
        """Whether superstep-concurrent writes merged by this combiner are
        race-free under the BSP contract."""
        return self.commutative or self.idempotent

    def describe(self) -> str:
        props = []
        if self.commutative:
            props.append("commutative")
        if self.idempotent:
            props.append("idempotent")
        return f"{self.op}({', '.join(props) or 'order-dependent'})"


#: atomicMin merge — labels, distances, component IDs.
MIN = Combiner("min", commutative=True, idempotent=True)

#: atomicMax merge.
MAX = Combiner("max", commutative=True, idempotent=True)

#: atomicAdd merge — rank shares, sigma/delta accumulation.
SUM = Combiner("sum", commutative=True, idempotent=False)

#: boolean OR merge — frontier-membership bitmaps.
ANY = Combiner("or", commutative=True, idempotent=True)

#: any concurrently-written value is acceptable (e.g. BFS predecessors:
#: every writer is a valid witness of the same BFS level).
WITNESS = Combiner(
    "witness", commutative=True, idempotent=False,
    reason="any valid witness is acceptable",
)

#: last-writer-wins — order-DEPENDENT, the sanitizer flags conflicts.
OVERWRITE = Combiner("overwrite", commutative=False, idempotent=False)


# ---------------------------------------------------------------------------
# Concrete operator semantics — the ground truth behind each declaration.
#
# A Combiner's ``commutative``/``idempotent`` flags are programmer *claims*.
# The deep analysis tier (``repro check --deep``, repro.check.deep.certify)
# verifies the claims by exhaustively evaluating the operator's concrete
# semantics over a small finite domain and emits a machine-checkable
# CombinerCertificate; the Enactor's relaxed-barrier precondition consumes
# those certificates.  Ops registered with ``fn=None`` are declared
# nondeterministic (any concurrently-written value is acceptable, e.g.
# ``witness``): they have no equational semantics to certify and can never
# be certified for relaxed-barrier execution.


@dataclass(frozen=True)
class OpSemantics:
    """Concrete evaluation semantics for one combiner op name.

    ``fn`` merges (current_state, incoming_update) -> new_state, or is
    ``None`` for declared-nondeterministic ops.  ``domain`` is the finite
    value set the certifier quantifies over; it must be rich enough to
    expose counterexamples (signs, zero, duplicates).
    """

    fn: Optional[Callable]
    domain: Tuple
    note: str = ""


#: integers with signs, zero, and magnitude spread — enough to refute
#: commutativity/associativity/idempotency for every arithmetic op here
INT_DOMAIN: Tuple = (-2, -1, 0, 1, 2, 7)
BOOL_DOMAIN: Tuple = (False, True)

_OP_SEMANTICS: Dict[str, OpSemantics] = {
    "min": OpSemantics(min, INT_DOMAIN),
    "max": OpSemantics(max, INT_DOMAIN),
    "sum": OpSemantics(lambda a, b: a + b, INT_DOMAIN),
    "or": OpSemantics(lambda a, b: a or b, BOOL_DOMAIN),
    "and": OpSemantics(lambda a, b: a and b, BOOL_DOMAIN),
    "mul": OpSemantics(lambda a, b: a * b, INT_DOMAIN),
    "sub": OpSemantics(lambda a, b: a - b, INT_DOMAIN),
    "first": OpSemantics(lambda a, b: a, INT_DOMAIN,
                         note="keep the already-applied value"),
    "last": OpSemantics(lambda a, b: b, INT_DOMAIN,
                        note="last writer wins"),
    "overwrite": OpSemantics(lambda a, b: b, INT_DOMAIN,
                             note="last writer wins"),
    "witness": OpSemantics(
        None, INT_DOMAIN,
        note="nondeterministic by declaration: any valid witness is "
             "acceptable, so there is no merge function to certify",
    ),
}


def op_semantics(op: str) -> Optional[OpSemantics]:
    """Registered semantics for a combiner op name, or None if unknown."""
    return _OP_SEMANTICS.get(op)


def known_ops() -> Tuple[str, ...]:
    """All registered op-semantics names, sorted.

    The certification tiers enumerate this to cross-check each other:
    the property test in ``tests/check/test_mc_property.py`` asserts the
    model checker's schedule-level verdict agrees with the algebraic
    ``evaluate_op`` verdict for every op listed here."""
    return tuple(sorted(_OP_SEMANTICS))


def register_op_semantics(
    op: str,
    fn: Optional[Callable],
    domain: Sequence = INT_DOMAIN,
    note: str = "",
) -> None:
    """Register (or override) concrete semantics for a combiner op.

    User primitives with custom merge operators register them here so the
    deep tier can certify their declarations instead of rejecting the op
    as unknown.
    """
    _OP_SEMANTICS[op] = OpSemantics(fn, tuple(domain), note)
