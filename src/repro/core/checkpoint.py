"""Barrier checkpointing and rollback routing (docs/robustness.md).

A :class:`Checkpoint` is a host-side snapshot of everything a traversal
needs to resume from a superstep barrier:

* the globalized per-vertex slice arrays (each vertex's value taken from
  its hosting GPU — the authoritative copy at a barrier);
* the problem's :attr:`~repro.core.problem.ProblemBase.CHECKPOINT_ATTRS`
  scalars (BC's phase machine, PR's convergence deltas, ...);
* the iteration object's instance state;
* per-GPU frontiers and in-flight messages, both lifted to *global*
  vertex IDs so they survive a repartition.

Everything is stored in global numbering on the host precisely so that a
rollback can re-route state onto a *different* vertex assignment than the
one it was captured under — that is what degraded-mode recovery after a
permanent GPU loss does: survivors keep their sub-frontiers, the dead
GPU's share is dealt onto its vertices' new hosts.

The virtual cost of taking/restoring a checkpoint (a host round-trip of
:attr:`Checkpoint.nbytes`) is charged by the enactor, not here.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from .comm import BROADCAST, Message
from .direction import DirectionState

__all__ = [
    "PendingMessage",
    "Checkpoint",
    "RecoveryPolicy",
    "capture_checkpoint",
    "route_restored_state",
]

#: dataclasses allowed inside checkpoint attrs / iteration state when
#: serializing to disk (name -> class, for reconstruction)
_DATACLASS_REGISTRY = {"DirectionState": DirectionState}

_FORMAT_VERSION = 1


@dataclass
class PendingMessage:
    """An in-flight message lifted to global vertex numbering."""

    src_gpu: int
    dst_gpu: int
    vertices: np.ndarray  # global IDs
    vertex_associates: List[np.ndarray] = field(default_factory=list)
    value_associates: List[np.ndarray] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        total = int(self.vertices.nbytes)
        for a in self.vertex_associates:
            total += int(a.nbytes)
        for a in self.value_associates:
            total += int(a.nbytes)
        return total


@dataclass
class RecoveryPolicy:
    """Knobs of the enactor's fault handling (docs/robustness.md).

    ``comm_backoff_base``/``cap`` are virtual seconds charged to the
    sender's communication stream per retry: capped exponential backoff,
    ``min(base * 2**(attempt-1), cap)``.
    """

    max_comm_retries: int = 5
    comm_backoff_base: float = 20e-6
    comm_backoff_cap: float = 500e-6
    retry_oom: bool = True
    max_rollbacks: int = 8


@dataclass
class Checkpoint:
    """One barrier snapshot; see the module docstring for the contract."""

    iteration: int
    partition_table: np.ndarray
    arrays: Dict[str, np.ndarray]
    attrs: Dict[str, object]
    iter_state: Dict[str, object]
    frontiers: List[np.ndarray]  # per-GPU, global IDs
    messages: List[PendingMessage]

    @property
    def num_gpus(self) -> int:
        return len(self.frontiers)

    @property
    def nbytes(self) -> int:
        """Logical snapshot size — what the host transfer is charged at."""
        total = int(self.partition_table.nbytes)
        for arr in self.arrays.values():
            total += int(arr.nbytes)
        for f in self.frontiers:
            total += int(f.nbytes)
        for m in self.messages:
            total += m.nbytes
        return total

    # -- disk round-trip ---------------------------------------------------
    def save(self, path: str) -> None:
        """Write the snapshot as a compressed ``.npz`` archive."""
        payload: Dict[str, np.ndarray] = {
            "partition_table": self.partition_table
        }
        for name, arr in self.arrays.items():
            payload[f"arr.{name}"] = arr
        for g, f in enumerate(self.frontiers):
            payload[f"frontier.{g}"] = f
        msg_meta = []
        for idx, m in enumerate(self.messages):
            payload[f"msg.{idx}.v"] = m.vertices
            for j, a in enumerate(m.vertex_associates):
                payload[f"msg.{idx}.va{j}"] = a
            for j, a in enumerate(m.value_associates):
                payload[f"msg.{idx}.la{j}"] = a
            msg_meta.append(
                [m.src_gpu, m.dst_gpu,
                 len(m.vertex_associates), len(m.value_associates)]
            )
        header = {
            "version": _FORMAT_VERSION,
            "iteration": self.iteration,
            "num_gpus": self.num_gpus,
            "array_names": list(self.arrays),
            "messages": msg_meta,
            "attrs": _to_jsonable(self.attrs),
            "iter_state": _to_jsonable(self.iter_state),
        }
        payload["header"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        )
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **payload)

    @classmethod
    def load(cls, path: str) -> "Checkpoint":
        try:
            data = np.load(path)
        except (OSError, ValueError) as exc:
            # np.load raises ValueError for non-npz bytes (its pickle
            # fallback is disabled) and OSError for unreadable files
            raise SimulationError(
                f"malformed checkpoint file {path!r}: {exc}",
                site="checkpoint.load",
            ) from exc
        with data:
            try:
                header = json.loads(bytes(data["header"]).decode("utf-8"))
            except (KeyError, ValueError) as exc:
                raise SimulationError(
                    f"malformed checkpoint file {path!r}: {exc}",
                    site="checkpoint.load",
                )
            if header.get("version") != _FORMAT_VERSION:
                raise SimulationError(
                    f"checkpoint {path!r} has unsupported version "
                    f"{header.get('version')!r}", site="checkpoint.load",
                )
            arrays = {
                name: data[f"arr.{name}"] for name in header["array_names"]
            }
            frontiers = [
                data[f"frontier.{g}"] for g in range(header["num_gpus"])
            ]
            messages = []
            for idx, (src, dst, n_va, n_la) in enumerate(header["messages"]):
                messages.append(
                    PendingMessage(
                        src_gpu=int(src),
                        dst_gpu=int(dst),
                        vertices=data[f"msg.{idx}.v"],
                        vertex_associates=[
                            data[f"msg.{idx}.va{j}"] for j in range(n_va)
                        ],
                        value_associates=[
                            data[f"msg.{idx}.la{j}"] for j in range(n_la)
                        ],
                    )
                )
            return cls(
                iteration=int(header["iteration"]),
                partition_table=data["partition_table"],
                arrays=arrays,
                attrs=_from_jsonable(header["attrs"]),
                iter_state=_from_jsonable(header["iter_state"]),
                frontiers=frontiers,
                messages=messages,
            )


# ----------------------------------------------------------------------
def capture_checkpoint(
    problem, iteration_obj, iteration: int,
    frontiers: List[np.ndarray], inboxes: List[List[tuple]],
    tracer=None,
) -> Checkpoint:
    """Snapshot the run at the barrier that ended ``iteration``.

    ``frontiers`` are the enactor's per-GPU local-ID frontiers and
    ``inboxes`` its per-GPU ``(arrival, Message)`` lists; both are lifted
    to global IDs.  Arrival timestamps are dropped: after a rollback the
    clock has moved on, so the enactor re-stamps deliveries at restore
    time.  ``tracer`` (optional) gets a ``checkpoint.capture`` event with
    the wall-clock cost of building the snapshot.
    """
    _wall0 = tracer.wall() if tracer is not None else 0.0
    subs = problem.subgraphs
    global_frontiers = [
        np.asarray(subs[g].local_to_global, dtype=np.int64)[
            np.asarray(f, dtype=np.int64)
        ]
        for g, f in enumerate(frontiers)
    ]
    messages: List[PendingMessage] = []
    for dst, box in enumerate(inboxes):
        l2g = np.asarray(subs[dst].local_to_global, dtype=np.int64)
        for _arrival, msg in box:
            messages.append(
                PendingMessage(
                    src_gpu=msg.src_gpu,
                    dst_gpu=dst,
                    vertices=l2g[np.asarray(msg.vertices, dtype=np.int64)],
                    vertex_associates=[
                        np.array(a, copy=True) for a in msg.vertex_associates
                    ],
                    value_associates=[
                        np.array(a, copy=True) for a in msg.value_associates
                    ],
                )
            )
    ckpt = Checkpoint(
        iteration=iteration,
        partition_table=np.array(
            problem.partition.partition_table, copy=True
        ),
        arrays=problem.snapshot_arrays(),
        attrs=problem.snapshot_attrs(),
        iter_state=iteration_obj.snapshot_state(),
        frontiers=global_frontiers,
        messages=messages,
    )
    if tracer is not None:
        tracer.instant(
            "checkpoint.capture", vt=problem.machine.clock.now,
            iteration=int(iteration),
            nbytes=int(ckpt.nbytes), messages=len(messages),
            wall_dur=tracer.wall() - _wall0,
        )
    return ckpt


def _dedup_preserving_order(arr: np.ndarray) -> np.ndarray:
    """Drop repeated IDs, keeping first occurrences in place.

    A frontier is semantically a vertex *set*; merging a dead GPU's
    rerouted share into a survivor's frontier must not double entries.
    Order is preserved so runs without duplicates are byte-identical to
    the pre-merge frontier.
    """
    if arr.size < 2:
        return arr
    _, first = np.unique(arr, return_index=True)
    if first.size == arr.size:
        return arr
    return arr[np.sort(first)]


def route_restored_state(
    ckpt: Checkpoint, problem, lost, tracer=None,
) -> Tuple[List[np.ndarray], List[Message]]:
    """Map a checkpoint onto the problem's *current* vertex assignment.

    Must run after :meth:`ProblemBase.repartition`; ``lost`` is the set
    of dead GPUs.  Returns per-GPU local-ID frontiers and the re-routed
    in-flight messages (receiver-local numbering, no arrival times).

    Routing rules:

    * an alive GPU keeps its own frontier and incoming messages (its
      hosted set is unchanged by :func:`reassign_onto_survivors`);
    * a dead GPU's frontier keeps only the vertices it *hosted* at
      capture time — other entries were mirrored work whose hosts still
      handle them — and each goes to its new host;
    * selective messages addressed to a dead GPU are re-split among the
      vertices' new hosts (associate arrays sliced alongside);
    * broadcast messages addressed to a dead GPU are dropped: the same
      payload was delivered to every alive peer already.
    """
    lost = frozenset(int(g) for g in lost)
    n = ckpt.num_gpus
    new_pt = problem.partition.partition_table
    ckpt_pt = ckpt.partition_table

    routed_global: List[List[np.ndarray]] = [[] for _ in range(n)]
    for g in range(n):
        fr = np.asarray(ckpt.frontiers[g], dtype=np.int64)
        if g not in lost:
            routed_global[g].append(fr)
            continue
        owned = fr[ckpt_pt[fr] == g]
        for host in np.unique(new_pt[owned]):
            routed_global[int(host)].append(owned[new_pt[owned] == host])

    frontiers: List[np.ndarray] = []
    for g in range(n):
        parts = [p for p in routed_global[g] if p.size] or [
            np.empty(0, dtype=np.int64)
        ]
        merged = parts[0] if len(parts) == 1 else np.concatenate(parts)
        merged = _dedup_preserving_order(merged)
        frontiers.append(
            problem.global_to_local(g, merged) if g not in lost
            else np.empty(0, dtype=np.int64)
        )

    broadcast = problem.communication == BROADCAST
    messages: List[Message] = []
    for pm in ckpt.messages:
        verts = np.asarray(pm.vertices, dtype=np.int64)
        if pm.dst_gpu not in lost:
            messages.append(
                Message(
                    pm.src_gpu, pm.dst_gpu,
                    problem.global_to_local(pm.dst_gpu, verts),
                    [np.array(a, copy=True) for a in pm.vertex_associates],
                    [np.array(a, copy=True) for a in pm.value_associates],
                )
            )
            continue
        if broadcast:
            # every alive peer got its own copy of this payload
            continue
        for host in np.unique(new_pt[verts]):
            host = int(host)
            mask = new_pt[verts] == host
            messages.append(
                Message(
                    pm.src_gpu, host,
                    problem.global_to_local(host, verts[mask]),
                    [np.array(a[mask], copy=True)
                     for a in pm.vertex_associates],
                    [np.array(a[mask], copy=True)
                     for a in pm.value_associates],
                )
            )
    if tracer is not None:
        tracer.instant(
            "recovery.restore-routed",
            vt=problem.machine.clock.now,
            iteration=int(ckpt.iteration),
            frontier_items=int(sum(f.size for f in frontiers)),
            messages=len(messages),
        )
    return frontiers, messages


# ----------------------------------------------------------------------
def _to_jsonable(value):
    """Tagged JSON encoding for checkpoint attrs / iteration state."""
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, np.generic):
        return value.item()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name not in _DATACLASS_REGISTRY:
            raise SimulationError(
                f"cannot serialize dataclass {name!r} in a checkpoint; "
                f"register it in checkpoint._DATACLASS_REGISTRY",
                site="checkpoint.save",
            )
        return {
            "__dataclass__": name,
            "fields": _to_jsonable(dataclasses.asdict(value)),
        }
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise SimulationError(
        f"cannot serialize {type(value).__name__!r} in a checkpoint",
        site="checkpoint.save",
    )


def _from_jsonable(value):
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.array(value["__ndarray__"], dtype=value["dtype"])
        if "__dataclass__" in value:
            cls = _DATACLASS_REGISTRY[value["__dataclass__"]]
            return cls(**_from_jsonable(value["fields"]))
        return {k: _from_jsonable(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_from_jsonable(v) for v in value]
    return value
