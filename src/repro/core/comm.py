"""Inter-GPU communication: split, package, push, combine support.

Implements the framework side of Section III-B/III-C: at the end of each
iteration the output frontier is split into local and remote sub-frontiers;
remote sub-frontiers are packaged with the programmer-specified associated
values and pushed to peer GPUs; the receiver combines them at the start of
its next iteration.

Two strategies (Section III-C):

* **selective** — send each frontier vertex only to its hosting GPU
  (requires the split step; less traffic);
* **broadcast** — send the whole frontier to every peer (no split, more
  traffic; required when any GPU may need any update, e.g. DOBFS's
  backward direction or CC's pointer jumping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..partition.duplication import SubGraph
from ..types import IdConfig
from .stats import OpStats

__all__ = ["Message", "split_frontier", "make_selective_messages",
           "make_broadcast_messages", "SELECTIVE", "BROADCAST"]

SELECTIVE = "selective"
BROADCAST = "broadcast"


@dataclass
class Message:
    """One packaged sub-frontier in flight between two GPUs.

    ``vertices`` are IDs in the *receiver's* numbering (for
    duplicate-1-hop the sender converts through ``host_local_id``; for
    duplicate-all IDs are global and universal).  Associates are parallel
    arrays: per-vertex IDs of ``VertexT`` (e.g. predecessors, as global
    IDs) and per-vertex values of ``ValueT`` (e.g. distances, ranks).
    """

    src_gpu: int
    dst_gpu: int
    vertices: np.ndarray
    vertex_associates: List[np.ndarray] = field(default_factory=list)
    value_associates: List[np.ndarray] = field(default_factory=list)

    @property
    def num_items(self) -> int:
        return int(self.vertices.size)

    def nbytes(self, ids: IdConfig) -> int:
        """Logical wire size: the Table V lever (64-bit IDs double this)."""
        total = self.vertices.size * ids.vertex_bytes
        for a in self.vertex_associates:
            total += a.size * ids.vertex_bytes
        for a in self.value_associates:
            total += a.size * ids.value_bytes
        return int(total)


def split_frontier(
    sub: SubGraph, frontier: np.ndarray, ids_bytes: int = 4, tracer=None
) -> Tuple[np.ndarray, Dict[int, np.ndarray], OpStats]:
    """Split an output frontier into the local part and per-peer parts.

    Returns ``(local_part, {peer: local_ids_of_their_vertices}, stats)``.
    The per-peer arrays hold *this GPU's local IDs* (so the caller can
    gather associated values); conversion to receiver numbering happens at
    packaging.  C (communication computation) is O(|frontier|): one host
    lookup and one scatter per element.
    """
    frontier = np.asarray(frontier)
    if frontier.dtype != np.int64:
        # enactor-fed frontiers arrive already int64; only detached
        # callers (tests, baselines) pay this copy
        frontier = frontier.astype(np.int64)
    hosts = sub.host_of_local[frontier]
    local = frontier[hosts == sub.gpu_id]
    remote: Dict[int, np.ndarray] = {}
    for peer in np.unique(hosts[hosts != sub.gpu_id]):
        remote[int(peer)] = frontier[hosts == peer]
    stats = OpStats(
        name="split",
        input_size=int(frontier.size),
        output_size=int(frontier.size),
        vertices_processed=int(frontier.size),
        launches=1,
        streaming_bytes=2 * frontier.size * ids_bytes,
        random_bytes=frontier.size * 4,  # host table probe
    )
    if tracer is not None:
        tracer.instant(
            "comm.split", gpu=sub.gpu_id,
            items=int(frontier.size), local=int(local.size),
            peers=len(remote),
        )
    return local, remote, stats


def make_selective_messages(
    sub: SubGraph,
    remote: Dict[int, np.ndarray],
    vertex_assoc_arrays: List[np.ndarray],
    value_assoc_arrays: List[np.ndarray],
    ids_bytes: int = 4,
    tracer=None,
) -> Tuple[List[Message], OpStats]:
    """Package per-peer sub-frontiers with their associated data.

    ``*_assoc_arrays`` are the per-vertex source arrays indexed by local
    ID (e.g. the preds array); packaging gathers the entries of the sent
    vertices — this is the "Package data" framework step.
    """
    messages: List[Message] = []
    packaged = 0
    for peer, local_ids in sorted(remote.items()):
        verts = sub.host_local_id[local_ids]
        va = [np.asarray(a[local_ids]) for a in vertex_assoc_arrays]
        la = [np.asarray(a[local_ids]) for a in value_assoc_arrays]
        messages.append(
            Message(sub.gpu_id, peer, verts, va, la)
        )
        packaged += local_ids.size
    n_assoc = len(vertex_assoc_arrays) + len(value_assoc_arrays)
    stats = OpStats(
        name="package",
        input_size=packaged,
        output_size=packaged,
        vertices_processed=packaged,
        launches=1 if packaged else 0,
        streaming_bytes=packaged * ids_bytes * (1 + n_assoc),
        random_bytes=packaged * ids_bytes * (1 + n_assoc),
    )
    if tracer is not None:
        tracer.instant(
            "comm.package", gpu=sub.gpu_id,
            items=int(packaged), messages=len(messages),
            associates=n_assoc,
        )
    return messages, stats


def make_broadcast_messages(
    sub: SubGraph,
    frontier: np.ndarray,
    num_gpus: int,
    vertex_assoc_arrays: List[np.ndarray],
    value_assoc_arrays: List[np.ndarray],
    ids_bytes: int = 4,
    skip=None,
    tracer=None,
) -> Tuple[List[Message], OpStats]:
    """Broadcast the whole frontier to every peer.

    Broadcasting "saves the work required to split the frontier, but
    consumes more memory and communication bandwidth" (Section III-C):
    packaging gathers once, then (n-1) copies go on the wire — H grows to
    O((n-1)|frontier|), exactly DOBFS's Table I row.  ``skip`` names GPUs
    excluded from the peer set (degraded mode after a GPU loss).
    """
    frontier = np.asarray(frontier, dtype=np.int64)
    verts = sub.host_local_id[frontier]
    va = [np.asarray(a[frontier]) for a in vertex_assoc_arrays]
    la = [np.asarray(a[frontier]) for a in value_assoc_arrays]
    skip = skip or ()
    messages = [
        Message(sub.gpu_id, peer, verts, list(va), list(la))
        for peer in range(num_gpus)
        if peer != sub.gpu_id and peer not in skip
    ]
    n_assoc = len(vertex_assoc_arrays) + len(value_assoc_arrays)
    stats = OpStats(
        name="broadcast-package",
        input_size=int(frontier.size),
        output_size=int(frontier.size),
        vertices_processed=int(frontier.size),
        launches=1 if frontier.size else 0,
        streaming_bytes=frontier.size * ids_bytes * (1 + n_assoc),
        random_bytes=frontier.size * ids_bytes * (1 + n_assoc),
    )
    if tracer is not None:
        tracer.instant(
            "comm.package", gpu=sub.gpu_id,
            items=int(frontier.size), messages=len(messages),
            associates=n_assoc, broadcast=True,
        )
    return messages, stats
