"""Iteration base: the per-primitive hooks of the BSP loop.

Mirrors the paper's ``IterationBase`` (Appendix A): the programmer
provides ``FullQueue_Core`` (the unmodified single-GPU computation for one
iteration) and ``Expand_Incoming`` (the combiner for received data); the
framework owns everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..partition.duplication import SubGraph
from ..sim.device import VirtualGPU
from ..sim.kernel import KernelModel
from .comm import Message
from .problem import DataSlice, ProblemBase
from .stats import OpStats
from .workspace import Workspace

__all__ = ["GpuContext", "IterationBase"]


@dataclass
class GpuContext:
    """Everything one GPU's hooks may touch during an iteration."""

    gpu: VirtualGPU
    sub: SubGraph
    slice: DataSlice
    kernel_model: KernelModel
    #: whether the enactor's allocation scheme fuses advance+filter
    fused: bool
    iteration: int
    num_gpus: int
    #: per-GPU scratch arena for operator hot paths (never shared across
    #: GPUs; None when the enactor runs without one, e.g. in unit tests)
    workspace: Optional[Workspace] = None
    #: attached obs.Tracer, or None (the common, zero-overhead case);
    #: primitives forward it to operator calls for wall-clock sampling
    tracer: Optional[object] = None

    @property
    def ids_bytes(self) -> int:
        return self.sub.csr.ids.vertex_bytes


class IterationBase:
    """Per-primitive iteration hooks.

    Subclasses implement :meth:`full_queue_core` and (for multi-GPU)
    :meth:`expand_incoming`; the defaults for the remaining hooks match
    the paper's BFS ("BFS uses the default Stop_Condition(), which exits
    the iteration loop when all frontiers are empty").
    """

    #: instance attributes excluded from checkpoints: references to
    #: structures the enactor rebuilds (the problem) and caches that
    #: :meth:`on_restore` re-derives.  Subclasses extend this set.
    SNAPSHOT_EXCLUDE = frozenset({"problem"})

    def __init__(self, problem: ProblemBase):
        self.problem = problem

    # -- required hooks -----------------------------------------------------
    def full_queue_core(
        self, ctx: GpuContext, frontier: np.ndarray
    ) -> Tuple[np.ndarray, List[OpStats]]:
        """One iteration of the unmodified single-GPU primitive.

        Receives the merged input frontier (local IDs) and returns the
        output frontier plus the operator stats for cost charging.
        """
        raise NotImplementedError

    def expand_incoming(
        self, ctx: GpuContext, msg: Message
    ) -> Tuple[np.ndarray, List[OpStats]]:
        """Combine one received message with local data.

        Returns the received vertices that must join the next input
        frontier (already deduplicated against local state), plus stats.
        The default accepts every vertex and is only correct for
        primitives with idempotent updates.
        """
        return np.asarray(msg.vertices, dtype=np.int64), []

    # -- data-to-communicate hooks (Section III-B "Data to communicate") ----
    def vertex_associate_arrays(self, ctx: GpuContext) -> Sequence[np.ndarray]:
        """Per-vertex ID arrays to package with sent vertices."""
        return []

    def value_associate_arrays(self, ctx: GpuContext) -> Sequence[np.ndarray]:
        """Per-vertex value arrays to package with sent vertices."""
        return []

    # -- optional hooks -------------------------------------------------------
    def communicates_this_iteration(self, iteration: int) -> bool:
        """Whether the end of this iteration exchanges frontiers at all."""
        return True

    def should_stop(
        self,
        iteration: int,
        frontier_sizes: Sequence[int],
        messages_in_flight: int,
    ) -> bool:
        """Global stop condition; default: all frontiers empty, no mail."""
        return sum(frontier_sizes) == 0 and messages_in_flight == 0

    def max_iterations(self) -> int:
        """Safety bound; a primitive exceeding it raises ConvergenceError."""
        return 10000

    def on_iteration_end(self, iteration: int) -> None:
        """Post-barrier hook (e.g. PR's convergence bookkeeping)."""

    def direction_of(self, gpu: int) -> str:
        """Traversal direction label for metrics (DOBFS overrides)."""
        return ""

    # -- checkpoint hooks (docs/robustness.md) -------------------------------
    def snapshot_state(self) -> dict:
        """Deep-copied instance state for a barrier checkpoint.

        Everything in ``__dict__`` except :attr:`SNAPSHOT_EXCLUDE` is
        captured; the copy is isolated so later supersteps cannot mutate
        a taken checkpoint.
        """
        import copy

        return {
            k: copy.deepcopy(v)
            for k, v in self.__dict__.items()
            if k not in self.SNAPSHOT_EXCLUDE
        }

    def restore_state(self, state: dict) -> None:
        """Restore from :meth:`snapshot_state` (the checkpoint survives
        repeated rollbacks: values are copied in, never moved)."""
        import copy

        for k, v in state.items():
            setattr(self, k, copy.deepcopy(v))
        self.on_restore()

    def on_restore(self) -> None:
        """Invalidate caches after a rollback (subclasses override)."""
