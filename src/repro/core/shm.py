"""Shared-memory slice manifest for the ``processes`` backend.

The processes backend forks one persistent worker per virtual GPU.  Fork
gives workers copy-on-write *reads* of the whole problem for free, but a
worker's superstep also **writes** its GPU's slice arrays (labels,
ranks, bitmaps, ...), and those writes must land where the parent — and
the next run's workers — can see them.  :class:`SliceManifest` migrates
every :class:`~repro.core.problem.DataSlice` array and every subgraph's
CSR structure (the int64 ``offsets64``/``cols64`` views the operators
traverse, plus the raw arrays and edge values) into named
``multiprocessing.shared_memory`` segments *before* the fork:

* reads are zero-copy in every process (one physical mapping of the CSR
  per host, no matter how many workers);
* slice-array writes made inside a worker are immediately visible to
  the parent at the barrier — no array shipping;
* each segment is listed in a picklable registry (:meth:`spec`), so a
  worker can re-attach any slice array *by name*
  (:meth:`attach_slices`) instead of relying on inherited mappings —
  the layer a ``spawn``-style backend would need, and what the
  round-trip unit test exercises.

Sanitizer interop: migration preserves ``ShadowArray`` wrappers by
re-wrapping the shm-backed replacement with the original's sanitizer
attribution (duck-typed through ``type(arr).wrap`` — no import cycle).

Lifecycle: segments are created by :meth:`migrate`; :meth:`release`
copies live bindings back to ordinary heap arrays (so the problem
remains usable after the backend is closed), closes what can be closed,
and **unlinks every segment** — the backend-test leak check asserts
``/dev/shm`` holds nothing of ours afterwards.  An ``atexit`` hook
unlinks anything a crashed run left behind.
"""

from __future__ import annotations

import atexit
import os
import secrets
import weakref
from multiprocessing import shared_memory
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["SliceManifest", "SHM_PREFIX"]

#: every segment name starts with this (plus the owning pid), so leak
#: checks and the atexit sweeper can identify ours
SHM_PREFIX = "repro-shm"


def _open_untracked(**kwargs) -> shared_memory.SharedMemory:
    """Open a segment without registering it with the resource_tracker.

    The stdlib tracker (pre-3.13) registers on *attach* too, and unlinks
    everything registered when any registering process exits — for fork
    workers that attach by name, that would destroy the parent's live
    segments at the first pool teardown.  Unregistering afterwards is
    also wrong: several workers' register/unregister messages interleave
    on the tracker pipe and double-removals raise in the tracker
    process.  So registration is suppressed at the source; the manifest
    owns the unlink.
    """
    from multiprocessing import resource_tracker

    orig = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(**kwargs)
    finally:
        resource_tracker.register = orig


def _unlink_untracked(seg) -> None:
    """``SharedMemory.unlink`` counterpart of :func:`_open_untracked`:
    it sends an ``unregister`` for the (never registered) name, which
    the tracker process reports as an error — suppress that too."""
    from multiprocessing import resource_tracker

    orig = resource_tracker.unregister
    resource_tracker.unregister = lambda *a, **k: None
    try:
        seg.unlink()
    finally:
        resource_tracker.unregister = orig


def _rewrap_like(original: np.ndarray, replacement: np.ndarray) -> np.ndarray:
    """Preserve a ShadowArray wrapper (sanitizer attribution) across
    migration; plain arrays pass through."""
    san = getattr(original, "_san", None)
    if san is not None:
        return type(original).wrap(
            replacement, san, original._owner, original._name
        )
    return replacement


_LIVE_MANIFESTS: "weakref.WeakSet[SliceManifest]" = weakref.WeakSet()
_ATEXIT_ARMED = False


def _sweep_at_exit() -> None:  # pragma: no cover - exit-time safety net
    for manifest in list(_LIVE_MANIFESTS):
        try:
            manifest.unlink()
        except (OSError, ValueError):
            pass


class SliceManifest:
    """Registry of shared-memory segments backing one problem's arrays."""

    def __init__(self):
        self._segments: Dict[tuple, shared_memory.SharedMemory] = {}
        #: key -> (segment name, shape, dtype string, writeable)
        self._specs: Dict[tuple, Tuple[str, tuple, str, bool]] = {}
        #: attach-side handles, kept alive so their buffers stay mapped
        self._attached: List[shared_memory.SharedMemory] = []
        #: (container dict, key-in-container, manifest key) bindings so
        #: release() can put heap arrays back where shm arrays live now
        self._slice_bindings: List[Tuple[dict, str, tuple]] = []
        self._csr_bindings: List[Tuple[object, str, tuple]] = []
        self._unlinked = False
        #: only the creating process may unlink — forked workers hold a
        #: copy of this object and must never destroy the parent's
        #: segments on their way out
        self._owner_pid = os.getpid()
        global _ATEXIT_ARMED
        _LIVE_MANIFESTS.add(self)
        if not _ATEXIT_ARMED:
            atexit.register(_sweep_at_exit)
            _ATEXIT_ARMED = True

    # -- creation --------------------------------------------------------
    def _new_segment(self, key: tuple, arr: np.ndarray) -> np.ndarray:
        name = (
            f"{SHM_PREFIX}-{os.getpid()}-{len(self._segments)}-"
            f"{secrets.token_hex(4)}"
        )
        seg = _open_untracked(
            create=True, size=max(1, arr.nbytes), name=name
        )
        new = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        new[...] = arr
        writeable = arr.flags.writeable
        if not writeable:
            new.setflags(write=False)
        self._segments[key] = seg
        self._specs[key] = (seg.name, arr.shape, arr.dtype.str, writeable)
        return new

    def migrate(self, problem) -> None:
        """Move the problem's slice arrays and CSR structure into shm.

        Mutates the problem in place: every ``DataSlice`` entry and every
        subgraph CSR field is rebound to a shm-backed equivalent (shadow
        wrappers preserved).  Idempotent per problem generation — call
        once after construction/repartition, before forking workers.
        """
        for gpu, ds in enumerate(problem.data_slices):
            for name in list(ds.arrays):
                arr = ds.arrays[name]
                base = arr.view(np.ndarray)
                new = self._new_segment(("slice", gpu, name), base)
                ds.arrays[name] = _rewrap_like(arr, new)
                self._slice_bindings.append((ds.arrays, name, ("slice", gpu, name)))
        migrated: Dict[int, bool] = {}
        for sub in problem.subgraphs:
            csr = sub.csr
            if csr is None or id(csr) in migrated:
                continue  # DUPLICATE_ALL shares one CsrGraph instance
            migrated[id(csr)] = True
            tag = len(migrated) - 1
            self._migrate_csr(csr, tag)

    def _migrate_csr(self, csr, tag: int) -> None:
        # force-build the int64 hot views first so aliasing is explicit
        off64, cols64 = csr.offsets64, csr.cols64
        new_off = self._new_segment(("csr", tag, "offsets64"), off64)
        new_cols = self._new_segment(("csr", tag, "cols64"), cols64)
        for attr, old, new, key in (
            ("_offsets64", off64, new_off, ("csr", tag, "offsets64")),
            ("_cols64", cols64, new_cols, ("csr", tag, "cols64")),
        ):
            setattr(csr, attr, new)
            self._csr_bindings.append((csr, attr, key))
        # the raw arrays alias the views at int64 width; otherwise they
        # get their own segments so *all* graph bytes are shared
        if csr.row_offsets is off64:
            csr.row_offsets = new_off
            self._csr_bindings.append((csr, "row_offsets", ("csr", tag, "offsets64")))
        else:
            csr.row_offsets = self._new_segment(
                ("csr", tag, "row_offsets"), csr.row_offsets
            )
            self._csr_bindings.append((csr, "row_offsets", ("csr", tag, "row_offsets")))
        if csr.col_indices is cols64:
            csr.col_indices = new_cols
            self._csr_bindings.append((csr, "col_indices", ("csr", tag, "cols64")))
        else:
            csr.col_indices = self._new_segment(
                ("csr", tag, "col_indices"), csr.col_indices
            )
            self._csr_bindings.append((csr, "col_indices", ("csr", tag, "col_indices")))
        if csr.values is not None:
            csr.values = self._new_segment(("csr", tag, "values"), csr.values)
            self._csr_bindings.append((csr, "values", ("csr", tag, "values")))

    # -- registry / attach ----------------------------------------------
    def spec(self) -> Dict[tuple, Tuple[str, tuple, str, bool]]:
        """Picklable registry: manifest key -> (name, shape, dtype, rw)."""
        return dict(self._specs)

    def segment_names(self) -> List[str]:
        return [seg.name for seg in self._segments.values()]

    def attach(self, key: tuple) -> np.ndarray:
        """Open the named segment for ``key`` and map its array.

        The handle is kept on the manifest so the buffer stays mapped;
        call from a worker (or the round-trip test) to get a live view
        of the parent's array by name alone.
        """
        name, shape, dtype, writeable = self._specs[key]
        seg = _open_untracked(name=name)
        self._attached.append(seg)
        arr = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
        if not writeable:
            arr.setflags(write=False)
        return arr

    def attach_slices(self) -> Iterator[Tuple[int, str, np.ndarray]]:
        """Attach every slice-array segment by name: yields
        ``(gpu, array_name, shm_array)``."""
        for key in self._specs:
            if key[0] == "slice":
                yield key[1], key[2], self.attach(key)

    def detach(self) -> None:
        """Close attach-side handles (worker teardown)."""
        for seg in self._attached:
            try:
                seg.close()
            except (OSError, BufferError):
                pass
        self._attached = []

    # -- teardown --------------------------------------------------------
    def release(self) -> None:
        """Rebind live arrays to heap copies, then destroy all segments.

        After this the problem is fully usable (``extract`` etc. read
        the heap copies) and ``/dev/shm`` holds none of our segments.
        """
        for container, name, key in self._slice_bindings:
            arr = container.get(name)
            if arr is None:
                continue
            base = arr.view(np.ndarray)
            container[name] = _rewrap_like(arr, base.copy())
        for obj, attr, key in self._csr_bindings:
            arr = getattr(obj, attr, None)
            if arr is None:
                continue
            heap = arr.copy()
            if not arr.flags.writeable:
                heap.setflags(write=False)
            setattr(obj, attr, heap)
        self._slice_bindings = []
        self._csr_bindings = []
        self.detach()
        self.unlink()

    def unlink(self) -> None:
        """Destroy every segment (idempotent).  Mappings still held by
        live arrays stay valid until those processes drop them; the
        *names* disappear from ``/dev/shm`` immediately."""
        if self._unlinked:
            return
        self._unlinked = True
        if os.getpid() != self._owner_pid:  # pragma: no cover - fork copy
            return
        for seg in self._segments.values():
            try:
                _unlink_untracked(seg)
            except FileNotFoundError:
                pass
            try:
                seg.close()
            except BufferError:
                # an array still references the buffer; the mapping dies
                # with the process, the name is already gone
                pass
        self._segments = {}

    def __len__(self) -> int:
        return len(self._specs)

    def __del__(self):  # pragma: no cover - GC timing dependent
        # backstop for enactors that are dropped without close(): the
        # segments must not outlive the manifest (live arrays keep their
        # mappings; only the /dev/shm names disappear)
        try:
            self.unlink()
        except (OSError, ValueError, AttributeError, TypeError):
            # interpreter shutdown may have torn down module globals
            pass
