"""The Gunrock-style multi-GPU framework core.

Public surface: a primitive is a (:class:`ProblemBase`,
:class:`IterationBase`) pair run by an :class:`Enactor` on a
:class:`~repro.sim.machine.Machine` — the exact shape of the paper's
Appendix A code example.
"""

from .checkpoint import Checkpoint, RecoveryPolicy
from .comm import BROADCAST, SELECTIVE, Message
from .direction import BACKWARD, FORWARD, DirectionState
from .enactor import Enactor
from .frontier import Frontier
from .iteration import GpuContext, IterationBase
from .problem import DataSlice, ProblemBase
from .stats import OpStats

__all__ = [
    "ProblemBase",
    "DataSlice",
    "IterationBase",
    "GpuContext",
    "Enactor",
    "Frontier",
    "Message",
    "OpStats",
    "SELECTIVE",
    "BROADCAST",
    "DirectionState",
    "FORWARD",
    "BACKWARD",
    "Checkpoint",
    "RecoveryPolicy",
]
