"""Problem base: per-GPU data slices (the paper's ``ProblemBase``).

A Problem owns everything that persists across traversals: the partitioned
subgraphs, the per-GPU ``DataSlice`` arrays, and their device-memory
accounting.  Programmers subclass it and specify (Section III-B):

* ``NUM_VERTEX_ASSOCIATES`` / ``NUM_VALUE_ASSOCIATES`` — how many
  per-vertex IDs/values accompany each communicated vertex;
* ``duplication`` — duplicate-all or duplicate-1-hop (Section III-C);
* ``communication`` — selective or broadcast;
* :meth:`init_data_slice` — allocate the primitive's per-vertex arrays;
* :meth:`reset` — prepare a new run and return the initial frontiers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import PartitionError
from ..graph.csr import CsrGraph
from ..partition.base import Partitioner
from ..partition.duplication import DUPLICATE_ALL, SubGraph, build_subgraphs
from ..partition.random_part import RandomPartitioner
from ..sim.machine import Machine
from .combine import Combiner
from .comm import SELECTIVE

__all__ = ["DataSlice", "ProblemBase"]


class DataSlice:
    """Per-GPU named arrays, registered with the device memory pool."""

    def __init__(self, gpu_id: int, pool, prefix: str = "slice") -> None:
        self.gpu_id = gpu_id
        self.pool = pool
        self.prefix = prefix
        self.arrays: Dict[str, np.ndarray] = {}

    def allocate(self, name: str, shape, dtype, fill: Any = None) -> np.ndarray:
        """Allocate a named device array (charged to the pool)."""
        arr = np.empty(shape, dtype=dtype)
        if fill is not None:
            arr.fill(fill)
        self.arrays[name] = arr
        if self.pool is not None:
            self.pool.alloc(f"{self.prefix}.{name}", arr.nbytes)
        return arr

    def release(self) -> None:
        """Free every array registered with the pool."""
        if self.pool is not None:
            for name in self.arrays:
                if self.pool.size_of(f"{self.prefix}.{name}") is not None:
                    self.pool.free(f"{self.prefix}.{name}")
        self.arrays.clear()

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    def __setitem__(self, name: str, value: np.ndarray) -> None:
        if name not in self.arrays:
            raise KeyError(
                f"array {name!r} was never allocated on GPU {self.gpu_id}"
            )
        self.arrays[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self.arrays


class ProblemBase:
    """Partition the graph and hold per-GPU state for one primitive.

    Parameters
    ----------
    graph:
        The full input graph.
    machine:
        The virtual node to run on; its GPU count is the partition count.
    partitioner:
        Vertex-assignment strategy (paper default: random, Section V-C).
    duplication / communication:
        Override the primitive's class-level strategy choices.
    charge_memory:
        When False, skip device-memory accounting (used by analysis code
        that replays partitions without simulating a device).
    """

    name: str = "problem"
    NUM_VERTEX_ASSOCIATES: int = 0
    NUM_VALUE_ASSOCIATES: int = 0
    duplication: str = DUPLICATE_ALL
    communication: str = SELECTIVE
    #: slice-array name -> declared merge semantics for superstep-concurrent
    #: writes (see :mod:`repro.core.combine`).  Any primitive that registers
    #: associates must declare how they combine; the ``repro check`` linter
    #: enforces the declaration and the BSP sanitizer verifies replicated
    #: writes only ever land on arrays whose combiner is order-independent.
    combiners: Dict[str, Combiner] = {}
    #: whether the primitive materializes an advance-output (intermediate)
    #: frontier; in-place primitives (PR's accumulate, CC's hook+jump)
    #: never need the O(|E|) buffer regardless of the allocation scheme
    uses_intermediate: bool = True

    def __init__(
        self,
        graph: CsrGraph,
        machine: Machine,
        partitioner: Optional[Partitioner] = None,
        duplication: Optional[str] = None,
        communication: Optional[str] = None,
        charge_memory: bool = True,
    ):
        self.graph = graph
        self.machine = machine
        self.num_gpus = machine.num_gpus
        if duplication is not None:
            self.duplication = duplication
        if communication is not None:
            self.communication = communication
        # Broadcast sends one message to every peer, so the vertex IDs in
        # it must mean the same thing on every receiver — only
        # duplicate-all's global numbering guarantees that.  With
        # duplicate-1-hop each GPU has its own renumbering and a broadcast
        # would be silently misinterpreted (Section III-C pairs the
        # strategies for exactly this reason).
        from ..partition.duplication import DUPLICATE_1HOP
        from .comm import BROADCAST

        if (
            self.communication == BROADCAST
            and self.duplication == DUPLICATE_1HOP
        ):
            raise PartitionError(
                "broadcast communication requires duplicate-all: "
                "duplicate-1-hop renumbers vertices per GPU, so a single "
                "broadcast payload cannot be valid on every receiver"
            )
        partitioner = partitioner or RandomPartitioner()
        self.partition = partitioner.partition(graph, self.num_gpus)
        self.subgraphs: List[SubGraph] = build_subgraphs(
            graph, self.partition, self.duplication
        )
        # unique allocation prefix so several problems can share a machine
        seq = getattr(machine, "_problem_seq", 0)
        machine._problem_seq = seq + 1
        self.alloc_prefix = f"{self.name}#{seq}"
        self.data_slices: List[DataSlice] = []
        for gpu in range(self.num_gpus):
            pool = machine.gpus[gpu].memory if charge_memory else None
            if pool is not None:
                pool.alloc(
                    f"{self.alloc_prefix}.subgraph",
                    self.subgraphs[gpu].memory_bytes(),
                )
            ds = DataSlice(gpu, pool, prefix=self.alloc_prefix)
            self.init_data_slice(ds, self.subgraphs[gpu])
            self.data_slices.append(ds)

    # -- programmer-specified hooks ---------------------------------------
    def init_data_slice(self, ds: DataSlice, sub: SubGraph) -> None:
        """Allocate the primitive's per-vertex arrays; override me."""

    def reset(self, **kwargs) -> List[np.ndarray]:
        """Prepare for a new run; return the initial frontier per GPU.

        Frontier vertices are in each GPU's local numbering.
        """
        raise NotImplementedError

    # -- framework helpers --------------------------------------------------
    def locate(self, global_vertex: int) -> tuple:
        """(host GPU, local ID) of a global vertex — how ``Reset`` places
        the source vertex (paper Appendix A: ``partition_tables`` then
        ``conversion_tables``)."""
        gpu = int(self.partition.partition_table[global_vertex])
        if self.duplication == DUPLICATE_ALL:
            return gpu, int(global_vertex)
        return gpu, int(self.partition.conversion_table[global_vertex])

    def extract(self, name: str, dtype=None) -> np.ndarray:
        """Gather a per-vertex result array back to global numbering.

        Each vertex's value is taken from its *hosting* GPU's slice (proxy
        copies are ignored), undoing the renumbering the partitioner did.
        """
        first = self.data_slices[0][name]
        out = np.empty(self.graph.num_vertices, dtype=dtype or first.dtype)
        for gpu in range(self.num_gpus):
            sub = self.subgraphs[gpu]
            arr = self.data_slices[gpu][name]
            hosted_local = np.flatnonzero(sub.host_of_local == gpu)
            hosted_global = sub.local_to_global[hosted_local]
            out[hosted_global] = arr[hosted_local]
        return out

    def slice_vertex_count(self, gpu: int) -> int:
        """|V_i| — the size per-vertex slice arrays must have."""
        return self.subgraphs[gpu].num_vertices

    def release(self) -> None:
        """Free all device memory held by this problem."""
        for gpu, ds in enumerate(self.data_slices):
            pool = ds.pool
            ds.release()
            if pool is not None and pool.size_of(
                f"{self.alloc_prefix}.subgraph"
            ) is not None:
                pool.free(f"{self.alloc_prefix}.subgraph")
