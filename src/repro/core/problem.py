"""Problem base: per-GPU data slices (the paper's ``ProblemBase``).

A Problem owns everything that persists across traversals: the partitioned
subgraphs, the per-GPU ``DataSlice`` arrays, and their device-memory
accounting.  Programmers subclass it and specify (Section III-B):

* ``NUM_VERTEX_ASSOCIATES`` / ``NUM_VALUE_ASSOCIATES`` — how many
  per-vertex IDs/values accompany each communicated vertex;
* ``duplication`` — duplicate-all or duplicate-1-hop (Section III-C);
* ``communication`` — selective or broadcast;
* :meth:`init_data_slice` — allocate the primitive's per-vertex arrays;
* :meth:`reset` — prepare a new run and return the initial frontiers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import PartitionError
from ..graph.csr import CsrGraph
from ..partition.base import Partitioner
from ..partition.duplication import DUPLICATE_ALL, SubGraph, build_subgraphs
from ..partition.random_part import RandomPartitioner
from ..sim.machine import Machine
from .combine import Combiner
from .comm import SELECTIVE

__all__ = ["DataSlice", "ProblemBase"]


class DataSlice:
    """Per-GPU named arrays, registered with the device memory pool."""

    def __init__(self, gpu_id: int, pool, prefix: str = "slice") -> None:
        self.gpu_id = gpu_id
        self.pool = pool
        self.prefix = prefix
        self.arrays: Dict[str, np.ndarray] = {}

    def allocate(self, name: str, shape, dtype, fill: Any = None) -> np.ndarray:
        """Allocate a named device array (charged to the pool)."""
        arr = np.empty(shape, dtype=dtype)
        if fill is not None:
            arr.fill(fill)
        self.arrays[name] = arr
        if self.pool is not None:
            self.pool.alloc(f"{self.prefix}.{name}", arr.nbytes)
        return arr

    def release(self) -> None:
        """Free every array registered with the pool."""
        if self.pool is not None:
            for name in self.arrays:
                if self.pool.size_of(f"{self.prefix}.{name}") is not None:
                    self.pool.free(f"{self.prefix}.{name}")
        self.arrays.clear()

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    def __setitem__(self, name: str, value: np.ndarray) -> None:
        if name not in self.arrays:
            raise KeyError(
                f"array {name!r} was never allocated on GPU {self.gpu_id}"
            )
        self.arrays[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self.arrays


class ProblemBase:
    """Partition the graph and hold per-GPU state for one primitive.

    Parameters
    ----------
    graph:
        The full input graph.
    machine:
        The virtual node to run on; its GPU count is the partition count.
    partitioner:
        Vertex-assignment strategy (paper default: random, Section V-C).
    duplication / communication:
        Override the primitive's class-level strategy choices.
    charge_memory:
        When False, skip device-memory accounting (used by analysis code
        that replays partitions without simulating a device).
    """

    name: str = "problem"
    NUM_VERTEX_ASSOCIATES: int = 0
    NUM_VALUE_ASSOCIATES: int = 0
    duplication: str = DUPLICATE_ALL
    communication: str = SELECTIVE
    #: slice-array name -> declared merge semantics for superstep-concurrent
    #: writes (see :mod:`repro.core.combine`).  Any primitive that registers
    #: associates must declare how they combine; the ``repro check`` linter
    #: enforces the declaration and the BSP sanitizer verifies replicated
    #: writes only ever land on arrays whose combiner is order-independent.
    combiners: Dict[str, Combiner] = {}
    #: whether the primitive materializes an advance-output (intermediate)
    #: frontier; in-place primitives (PR's accumulate, CC's hook+jump)
    #: never need the O(|E|) buffer regardless of the allocation scheme
    uses_intermediate: bool = True
    #: scalar/object attributes (beyond slice arrays) that a barrier
    #: checkpoint must capture — e.g. BC's phase machine, PR's per-GPU
    #: convergence deltas (see docs/robustness.md)
    CHECKPOINT_ATTRS: tuple = ()
    #: names of per-GPU *sequences* (list or 1-D array indexed by GPU)
    #: whose entries hooks mutate **inside a superstep** — e.g. PR's
    #: ``max_delta[gpu]``, DOBFS's ``directions[gpu]``.  The processes
    #: backend ships entry ``[gpu]`` back from the worker that ran that
    #: GPU and replays it parent-side at the barrier; entries must be
    #: picklable.  Parent-side mutations (``should_stop``) need no
    #: declaration — workers receive them via the per-superstep
    #: :attr:`CHECKPOINT_ATTRS` snapshot instead.
    PER_GPU_MUTABLE_ATTRS: tuple = ()

    def __init__(
        self,
        graph: CsrGraph,
        machine: Machine,
        partitioner: Optional[Partitioner] = None,
        duplication: Optional[str] = None,
        communication: Optional[str] = None,
        charge_memory: bool = True,
    ):
        self.graph = graph
        self.machine = machine
        self.num_gpus = machine.num_gpus
        if duplication is not None:
            self.duplication = duplication
        if communication is not None:
            self.communication = communication
        # Broadcast sends one message to every peer, so the vertex IDs in
        # it must mean the same thing on every receiver — only
        # duplicate-all's global numbering guarantees that.  With
        # duplicate-1-hop each GPU has its own renumbering and a broadcast
        # would be silently misinterpreted (Section III-C pairs the
        # strategies for exactly this reason).
        from ..partition.duplication import DUPLICATE_1HOP
        from .comm import BROADCAST

        if (
            self.communication == BROADCAST
            and self.duplication == DUPLICATE_1HOP
        ):
            raise PartitionError(
                "broadcast communication requires duplicate-all: "
                "duplicate-1-hop renumbers vertices per GPU, so a single "
                "broadcast payload cannot be valid on every receiver"
            )
        partitioner = partitioner or RandomPartitioner()
        self.charge_memory = charge_memory
        self.partition = partitioner.partition(graph, self.num_gpus)
        self.subgraphs: List[SubGraph] = build_subgraphs(
            graph, self.partition, self.duplication
        )
        # unique allocation prefix so several problems can share a machine
        seq = getattr(machine, "_problem_seq", 0)
        machine._problem_seq = seq + 1
        self.alloc_prefix = f"{self.name}#{seq}"
        self._build_data_slices(dead=frozenset())

    def _build_data_slices(self, dead: frozenset) -> None:
        """(Re)create per-GPU data slices for the current subgraphs.

        ``dead`` GPUs get a slice without device-memory accounting (their
        hardware is gone; the host-side arrays exist only so indexing
        stays uniform — with an empty hosted set they carry no results).
        """
        self.data_slices = []
        for gpu in range(self.num_gpus):
            charge = self.charge_memory and gpu not in dead
            pool = self.machine.gpus[gpu].memory if charge else None
            if pool is not None:
                pool.alloc(
                    f"{self.alloc_prefix}.subgraph",
                    self.subgraphs[gpu].memory_bytes(),
                )
            ds = DataSlice(gpu, pool, prefix=self.alloc_prefix)
            self.init_data_slice(ds, self.subgraphs[gpu])
            self.data_slices.append(ds)

    # -- programmer-specified hooks ---------------------------------------
    def init_data_slice(self, ds: DataSlice, sub: SubGraph) -> None:
        """Allocate the primitive's per-vertex arrays; override me."""

    def reset(self, **kwargs) -> List[np.ndarray]:
        """Prepare for a new run; return the initial frontier per GPU.

        Frontier vertices are in each GPU's local numbering.
        """
        raise NotImplementedError

    # -- framework helpers --------------------------------------------------
    def locate(self, global_vertex: int) -> tuple:
        """(host GPU, local ID) of a global vertex — how ``Reset`` places
        the source vertex (paper Appendix A: ``partition_tables`` then
        ``conversion_tables``)."""
        gpu = int(self.partition.partition_table[global_vertex])
        if self.duplication == DUPLICATE_ALL:
            return gpu, int(global_vertex)
        return gpu, int(self.partition.conversion_table[global_vertex])

    def extract(self, name: str, dtype=None) -> np.ndarray:
        """Gather a per-vertex result array back to global numbering.

        Each vertex's value is taken from its *hosting* GPU's slice (proxy
        copies are ignored), undoing the renumbering the partitioner did.
        """
        first = self.data_slices[0][name]
        out = np.empty(self.graph.num_vertices, dtype=dtype or first.dtype)
        for gpu in range(self.num_gpus):
            sub = self.subgraphs[gpu]
            arr = self.data_slices[gpu][name]
            hosted_local = np.flatnonzero(sub.host_of_local == gpu)
            hosted_global = sub.local_to_global[hosted_local]
            out[hosted_global] = arr[hosted_local]
        return out

    def slice_vertex_count(self, gpu: int) -> int:
        """|V_i| — the size per-vertex slice arrays must have."""
        return self.subgraphs[gpu].num_vertices

    def release(self) -> None:
        """Free all device memory held by this problem."""
        for gpu, ds in enumerate(self.data_slices):
            pool = ds.pool
            ds.release()
            if pool is not None and pool.size_of(
                f"{self.alloc_prefix}.subgraph"
            ) is not None:
                pool.free(f"{self.alloc_prefix}.subgraph")

    # -- checkpoint / recovery API (docs/robustness.md) ---------------------
    def per_vertex_array_names(self) -> List[str]:
        """Slice arrays indexed by local vertex ID on every GPU.

        These are the arrays a checkpoint globalizes via :meth:`extract`.
        Structural arrays with other shapes (e.g. CC's per-edge
        ``edge_src``) are rebuilt by :meth:`init_data_slice` and need no
        snapshot.
        """
        names = []
        for name in self.data_slices[0].arrays:
            if all(
                self.data_slices[g].arrays[name].shape[:1]
                == (self.subgraphs[g].num_vertices,)
                for g in range(self.num_gpus)
            ):
                names.append(name)
        return names

    def snapshot_arrays(self) -> Dict[str, np.ndarray]:
        """Globalized copies of every per-vertex slice array."""
        return {name: self.extract(name)
                for name in self.per_vertex_array_names()}

    def restore_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        """Scatter globalized arrays back into every GPU's slice.

        Proxy (non-hosted) entries receive the hosting GPU's value —
        the authoritative one at the checkpointed barrier.
        """
        for name, global_arr in arrays.items():
            for gpu in range(self.num_gpus):
                sub = self.subgraphs[gpu]
                if name not in self.data_slices[gpu]:
                    continue
                self.data_slices[gpu][name][:] = (
                    global_arr[sub.local_to_global]
                )

    def snapshot_attrs(self) -> Dict[str, Any]:
        """Deep-copied :attr:`CHECKPOINT_ATTRS` values."""
        import copy

        return {name: copy.deepcopy(getattr(self, name))
                for name in self.CHECKPOINT_ATTRS}

    def restore_attrs(self, attrs: Dict[str, Any]) -> None:
        import copy

        for name, value in attrs.items():
            setattr(self, name, copy.deepcopy(value))

    def global_to_local(self, gpu: int, global_ids: np.ndarray) -> np.ndarray:
        """Map global vertex IDs into ``gpu``'s local numbering.

        Every requested vertex must exist in the subgraph (hosted or
        1-hop proxy); a miss means the caller routed state to the wrong
        GPU and raises :class:`~repro.errors.PartitionError`.
        """
        ids = np.asarray(global_ids, dtype=np.int64)
        if self.duplication == DUPLICATE_ALL:
            return ids
        sub = self.subgraphs[gpu]
        inverse = np.full(self.graph.num_vertices, -1, dtype=np.int64)
        inverse[sub.local_to_global] = np.arange(
            sub.num_vertices, dtype=np.int64
        )
        out = inverse[ids]
        if out.size and out.min() < 0:
            missing = ids[out < 0][:4]
            raise PartitionError(
                f"vertices {missing.tolist()} are not present on GPU {gpu}",
                gpu_id=gpu, site="problem.global_to_local",
            )
        return out

    def repartition(self, assignment: np.ndarray, dead=frozenset()) -> None:
        """Rebuild subgraphs and slices for a new vertex assignment.

        Used by degraded-mode recovery: after a permanent GPU loss the
        enactor reassigns the dead GPU's vertices onto survivors and
        calls this, then restores array *contents* from the checkpoint
        (``init_data_slice`` reinitializes them here).  The machine keeps
        its GPU count — dead GPUs get empty-hosted subgraphs so existing
        indexing stays valid.
        """
        dead = frozenset(int(g) for g in dead)
        assignment = np.asarray(assignment)
        if assignment.shape != (self.graph.num_vertices,):
            raise PartitionError(
                f"assignment has shape {assignment.shape}, expected "
                f"({self.graph.num_vertices},)", site="problem.repartition",
            )
        if dead and np.isin(assignment, list(dead)).any():
            raise PartitionError(
                "new assignment routes vertices to a lost GPU",
                site="problem.repartition",
            )
        from ..partition.base import PartitionResult

        for ds in self.data_slices:
            pool = ds.pool
            ds.release()
            if pool is not None and pool.size_of(
                f"{self.alloc_prefix}.subgraph"
            ) is not None:
                pool.free(f"{self.alloc_prefix}.subgraph")
        self.partition = PartitionResult.from_assignment(
            assignment, self.num_gpus
        )
        self.subgraphs = build_subgraphs(
            self.graph, self.partition, self.duplication
        )
        self._build_data_slices(dead=dead)

    def on_repartition(self, dead=frozenset()) -> None:
        """Hook run after repartition + state restore completes.

        Primitives with partition-derived caches (PR's hosted/border
        frontiers) or per-GPU convergence state recompute them here.
        """
