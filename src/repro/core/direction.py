"""Direction-optimizing traversal engine (Section VI-A).

Implements the paper's improved direction-selection rule, which needs only
inputs that are already available (no extra pass over the frontier):

* estimated forward edges  ``FV = |Q| * |Ei| / |Vi|``
* estimated backward edges ``BV = |U| * |Vi| / |P|``

where Q is the current frontier, U the unvisited vertices and P the
visited vertices.  Traversal begins forward; at the start of each
iteration it switches forward->backward when ``FV > BV * do_a`` and
backward->forward when ``FV < BV * do_b``.  Because the
forward->backward switch requires scanning all vertices for unvisited
ones, it is allowed only **once**.

The paper reports do_a = 0.01 and do_b = 0.1 work well for social graphs
and are mostly independent of GPU count — the Section VI-A ablation bench
verifies both properties.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DirectionState", "FORWARD", "BACKWARD"]

FORWARD = "forward"
BACKWARD = "backward"


@dataclass
class DirectionState:
    """Per-run direction state machine.

    Parameters
    ----------
    num_vertices, num_edges:
        |Vi| and |Ei| of the local subgraph.
    do_a, do_b:
        Switching thresholds (paper defaults for social graphs).
    """

    num_vertices: int
    num_edges: int
    do_a: float = 0.01
    do_b: float = 0.1
    direction: str = FORWARD
    switched_to_backward: bool = False

    def estimate_forward(self, frontier_size: int) -> float:
        """FV: expected edges a push advance would visit."""
        if self.num_vertices == 0:
            return 0.0
        return frontier_size * self.num_edges / self.num_vertices

    def estimate_backward(self, unvisited: int, visited: int) -> float:
        """BV: expected edges a pull advance would scan."""
        if visited <= 0:
            return float("inf")
        return unvisited * self.num_vertices / visited

    def update(self, frontier_size: int, unvisited: int, visited: int) -> str:
        """Decide the direction for the upcoming iteration.

        Called at the beginning of each iteration (after the first); the
        forward->backward transition is one-way-once, backward->forward is
        always allowed (and final, since the forward switch is used up).
        """
        fv = self.estimate_forward(frontier_size)
        bv = self.estimate_backward(unvisited, visited)
        if self.direction == FORWARD:
            if not self.switched_to_backward and fv > bv * self.do_a:
                self.direction = BACKWARD
                self.switched_to_backward = True
        else:  # BACKWARD
            if fv < bv * self.do_b:
                self.direction = FORWARD
        return self.direction
