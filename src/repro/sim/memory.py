"""Per-device memory pools and the paper's allocation schemes.

GPU memory capacity is the central constraint of Section VI-B.  Every
virtual GPU owns a :class:`MemoryPool` with the capacity of its
:class:`~repro.sim.device.DeviceSpec`; all framework buffers (subgraph CSR,
labels, frontier queues, communication buffers) are allocated from it, and
exceeding capacity raises :class:`~repro.errors.DeviceMemoryError` exactly
where a real run would fail with ``cudaErrorMemoryAllocation``.

The four allocation schemes compared in Fig. 3 are expressed as
:class:`AllocationScheme` policies that the enactor consults when sizing
frontier buffers:

* ``max``: worst-case O(|E|) buffers — safe but wasteful;
* ``fixed``: preallocation with sizing factors "calculated from previous
  runs of similar graphs";
* ``just-enough``: estimate then reallocate on demand (reallocation is
  charged time but is rare);
* ``prealloc+fusion``: fixed preallocation, with advance+filter kernel
  fusion eliminating the O(|E|) intermediate frontier entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import DeviceMemoryError

__all__ = [
    "Allocation",
    "MemoryPool",
    "AllocationScheme",
    "JustEnough",
    "FixedPrealloc",
    "MaxAlloc",
    "PreallocFusion",
    "scheme_by_name",
]


@dataclass
class Allocation:
    """One live allocation in a pool (sizes in *logical* bytes)."""

    name: str
    nbytes: int


class MemoryPool:
    """Tracks allocations on one virtual GPU.

    Sizes passed in are *logical* bytes (the actual NumPy array sizes of
    the scaled-down stand-in datasets); the pool charges
    ``logical * scale`` against capacity so that occupancy matches what the
    paper's full-size datasets would use (see DESIGN.md "Workload
    scaling").
    """

    def __init__(
        self,
        capacity: int,
        scale: float = 1.0,
        owner: str = "GPU",
        gpu_id: Optional[int] = None,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.scale = float(scale)
        self.owner = owner
        self.gpu_id = gpu_id
        #: armed FaultInjector, or None (the common, zero-overhead case)
        self.faults = None
        self._allocs: Dict[str, Allocation] = {}
        self._in_use = 0  # scaled bytes
        self._peak = 0
        self.num_reallocs = 0

    # -- accounting ------------------------------------------------------
    @property
    def in_use(self) -> int:
        """Scaled bytes currently allocated."""
        return self._in_use

    @property
    def peak(self) -> int:
        """High-water mark of scaled bytes."""
        return self._peak

    @property
    def free_bytes(self) -> int:
        return self.capacity - self._in_use

    def scaled(self, logical_nbytes: int) -> int:
        return int(logical_nbytes * self.scale)

    # -- operations ------------------------------------------------------
    def alloc(self, name: str, nbytes: int) -> Allocation:
        """Allocate ``nbytes`` logical bytes under ``name``."""
        if name in self._allocs:
            raise DeviceMemoryError(
                f"{self.owner}: allocation {name!r} already exists",
                gpu_id=self.gpu_id, site=f"memory.alloc[{name}]",
            )
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if self.faults is not None:
            self.faults.check_alloc(self.gpu_id, name)
        charged = self.scaled(nbytes)
        if self._in_use + charged > self.capacity:
            raise DeviceMemoryError(
                f"{self.owner}: out of memory allocating {name!r} "
                f"({charged / 2**30:.2f} GiB scaled; "
                f"{self.free_bytes / 2**30:.2f} GiB free of "
                f"{self.capacity / 2**30:.2f} GiB)",
                gpu_id=self.gpu_id, site=f"memory.alloc[{name}]",
            )
        a = Allocation(name, nbytes)
        self._allocs[name] = a
        self._in_use += charged
        self._peak = max(self._peak, self._in_use)
        return a

    def free(self, name: str) -> None:
        a = self._allocs.pop(name, None)
        if a is None:
            raise DeviceMemoryError(
                f"{self.owner}: no allocation {name!r}",
                gpu_id=self.gpu_id, site=f"memory.free[{name}]",
            )
        self._in_use -= self.scaled(a.nbytes)

    def realloc(self, name: str, nbytes: int, preserve: bool = True) -> Allocation:
        """Resize an allocation (the expensive path of just-enough).

        Counted in :attr:`num_reallocs`; the enactor charges device time
        for it.  With ``preserve=True`` both the old and new buffers
        transiently coexist (``cudaMalloc`` + copy + ``cudaFree``), so the
        peak includes both.  Framework queues whose contents are
        regenerated every iteration (advance output, frontier queues whose
        size is known from the load-balancing scan *before* the producing
        kernel runs) are resized with ``preserve=False`` —
        ``cudaFree`` + ``cudaMalloc``, no transient double-occupancy.
        """
        if name not in self._allocs:
            return self.alloc(name, nbytes)
        if self.faults is not None:
            self.faults.check_alloc(self.gpu_id, name)
        old = self._allocs[name]
        if preserve:
            transient = self._in_use + self.scaled(nbytes)
            if transient > self.capacity:
                raise DeviceMemoryError(
                    f"{self.owner}: out of memory reallocating {name!r}",
                    gpu_id=self.gpu_id, site=f"memory.realloc[{name}]",
                )
            self._peak = max(self._peak, transient)
            self._in_use = transient - self.scaled(old.nbytes)
        else:
            new_in_use = (
                self._in_use - self.scaled(old.nbytes) + self.scaled(nbytes)
            )
            if new_in_use > self.capacity:
                raise DeviceMemoryError(
                    f"{self.owner}: out of memory reallocating {name!r}",
                    gpu_id=self.gpu_id, site=f"memory.realloc[{name}]",
                )
            self._in_use = new_in_use
            self._peak = max(self._peak, self._in_use)
        self._allocs[name] = Allocation(name, nbytes)
        self.num_reallocs += 1
        return self._allocs[name]

    def ensure(self, name: str, nbytes: int, preserve: bool = True) -> bool:
        """Grow ``name`` to at least ``nbytes``; returns True if it grew."""
        cur = self._allocs.get(name)
        if cur is not None and cur.nbytes >= nbytes:
            return False
        self.realloc(name, nbytes, preserve=preserve)
        return True

    def size_of(self, name: str) -> Optional[int]:
        a = self._allocs.get(name)
        return None if a is None else a.nbytes

    def reset_peak(self) -> None:
        self._peak = self._in_use

    # -- cross-process state sync ---------------------------------------
    def export_state(self) -> dict:
        """Picklable snapshot of the pool's accounting.

        Used by the ``processes`` backend: a worker's pool evolves in its
        own address space during a superstep, and the parent adopts the
        worker's accounting wholesale at the barrier (the parent never
        touches a GPU's pool between barriers, so this is a plain
        overwrite, not a merge)."""
        return {
            "allocs": {n: a.nbytes for n, a in self._allocs.items()},
            "in_use": self._in_use,
            "peak": self._peak,
            "num_reallocs": self.num_reallocs,
        }

    def apply_state(self, state: dict) -> None:
        """Adopt an :meth:`export_state` snapshot (inverse operation)."""
        self._allocs = {
            n: Allocation(n, nbytes) for n, nbytes in state["allocs"].items()
        }
        self._in_use = state["in_use"]
        self._peak = state["peak"]
        self.num_reallocs = state["num_reallocs"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoryPool({self.owner}, in_use={self._in_use / 2**30:.2f} GiB, "
            f"peak={self._peak / 2**30:.2f} GiB)"
        )


# ---------------------------------------------------------------------------
# Allocation schemes (Fig. 3)
# ---------------------------------------------------------------------------


class AllocationScheme:
    """Policy that sizes the frontier and intermediate buffers.

    ``frontier_capacity`` / ``intermediate_capacity`` return *item counts*
    for the initial allocation, given the subgraph's |Vi| and |Ei|;
    ``grows_on_demand`` says whether undersized buffers are reallocated
    (just-enough) or are a hard failure; ``fused`` says whether the
    advance+filter fusion removes the intermediate frontier.
    """

    name: str = "base"
    grows_on_demand: bool = False
    fused: bool = False

    def frontier_capacity(self, num_vertices: int, num_edges: int) -> int:
        raise NotImplementedError

    def intermediate_capacity(self, num_vertices: int, num_edges: int) -> int:
        raise NotImplementedError


class JustEnough(AllocationScheme):
    """Estimate small, reallocate when the exact output size demands it.

    The initial estimate follows the paper: frontier buffers start at
    O(|Vi|); the intermediate (advance output) buffer starts at a modest
    multiple of |Vi| and grows to the true high-water mark, which
    Gunrock's load-balancing scan can compute exactly before the kernel
    runs.
    """

    name = "just-enough"
    grows_on_demand = True

    def __init__(self, slack: float = 1.1):
        self.slack = slack

    def frontier_capacity(self, num_vertices: int, num_edges: int) -> int:
        return max(1, int(self.slack * num_vertices * 0.25))

    def intermediate_capacity(self, num_vertices: int, num_edges: int) -> int:
        return max(1, int(self.slack * num_vertices))


class FixedPrealloc(AllocationScheme):
    """Preallocate using sizing factors from previous runs of similar graphs."""

    name = "fixed"

    def __init__(self, frontier_factor: float = 2.0, edge_factor: float = 1.1):
        self.frontier_factor = frontier_factor
        self.edge_factor = edge_factor

    def frontier_capacity(self, num_vertices: int, num_edges: int) -> int:
        return max(1, int(self.frontier_factor * num_vertices))

    def intermediate_capacity(self, num_vertices: int, num_edges: int) -> int:
        return max(1, int(self.edge_factor * num_edges))


class MaxAlloc(AllocationScheme):
    """Worst-case allocation: size-|E| arrays "to handle any case".

    Frontier queues can in the worst case hold one entry per edge (a
    frontier with duplicates before filtering), so the truly-safe sizing
    the paper describes allocates O(|E|) for them too — which is exactly
    why it "artificially limits the size of the subgraph we can place
    onto one GPU" (Section VI-B).
    """

    name = "max"

    def frontier_capacity(self, num_vertices: int, num_edges: int) -> int:
        return max(1, num_edges)

    def intermediate_capacity(self, num_vertices: int, num_edges: int) -> int:
        return max(1, num_edges)


class PreallocFusion(AllocationScheme):
    """Fixed preallocation plus advance+filter kernel fusion.

    Fusion eliminates the intermediate frontier buffer entirely
    (Section VI-C), so only O(|Vi|) frontier queues remain.  This is the
    scheme the paper's (DO)BFS/SSSP/BC use.
    """

    name = "prealloc+fusion"
    fused = True

    def __init__(self, frontier_factor: float = 1.5):
        self.frontier_factor = frontier_factor

    def frontier_capacity(self, num_vertices: int, num_edges: int) -> int:
        return max(1, int(self.frontier_factor * num_vertices))

    def intermediate_capacity(self, num_vertices: int, num_edges: int) -> int:
        return 0


_SCHEMES = {
    "just-enough": JustEnough,
    "fixed": FixedPrealloc,
    "max": MaxAlloc,
    "prealloc+fusion": PreallocFusion,
}


def scheme_by_name(name: str) -> AllocationScheme:
    """Instantiate an allocation scheme from its Fig. 3 label."""
    try:
        return _SCHEMES[name]()
    except KeyError:
        raise ValueError(
            f"unknown allocation scheme {name!r}; options: {sorted(_SCHEMES)}"
        ) from None
