"""Deterministic fault injection for the virtual multi-GPU machine.

A :class:`FaultPlan` is a seeded, serializable list of :class:`FaultSpec`
entries, each naming a *kind* of fault, the GPU it strikes, and the BSP
iteration at which it becomes pending.  A :class:`FaultInjector` arms a
plan against a :class:`~repro.sim.machine.Machine`: the interconnect and
the per-GPU memory pools call back into the injector at their natural
fault sites, and the injector decides — deterministically — whether to
raise.

Determinism contract
--------------------
Fault *sites* (a particular transfer, a particular allocation) are data
dependent: whether GPU 2 sends anything at iteration 5 depends on the
graph and the primitive.  Pinning a fault to an exact site would make
plans fragile, so specs use **at-or-after** semantics: a fault becomes
*pending* once its GPU reaches ``spec.iteration`` and fires at the first
opportunity at its site — the first transfer out of that GPU, the first
allocation on it, the first superstep start (for GPU loss).  Given the
same plan and the same run, the same operation fails every time, on both
the serial and the threads backend (consumption is lock-protected).

Zero overhead when disarmed: every hook in the hot path is guarded by a
single ``if faults is not None`` check on an attribute that is ``None``
unless :meth:`Machine.arm_faults` was called.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import (
    CommunicationError,
    DeviceLostError,
    DeviceMemoryError,
    SimulationError,
)

__all__ = [
    "TRANSIENT_COMM",
    "OOM",
    "STRAGGLER",
    "GPU_LOSS",
    "WORKER_CRASH",
    "WORKER_HANG",
    "SHM_CORRUPT",
    "FAULT_KINDS",
    "HOST_FAULT_KINDS",
    "ALL_FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
]

#: transient link failure: the transfer raises CommunicationError and
#: succeeds when retried (``count`` consecutive failures per spec)
TRANSIENT_COMM = "transient-comm"
#: allocation failure: the next alloc/realloc on the GPU raises
#: DeviceMemoryError once
OOM = "oom"
#: slow device: kernel launches on the GPU take ``factor``x longer for
#: ``duration`` supersteps (virtual-time only; results are unaffected)
STRAGGLER = "straggler"
#: permanent device loss: the GPU raises DeviceLostError at superstep
#: start and never comes back
GPU_LOSS = "gpu-loss"

FAULT_KINDS = (TRANSIENT_COMM, OOM, STRAGGLER, GPU_LOSS)

#: real worker process killed with SIGKILL mid-superstep (host-level:
#: delivered to an actual OS process, processes backend + supervision
#: only; the supervisor respawns the worker and replays the superstep)
WORKER_CRASH = "worker-crash"
#: real worker process SIGSTOPped so its heartbeat goes stale; the
#: supervisor detects the hang, kills + respawns the worker, replays
WORKER_HANG = "worker-hang"
#: deliberate byte flip in a shared-memory slice window the injector
#: does not own; caught by the per-barrier checksum, escalates to the
#: DeviceLostError rollback path (the data cannot be trusted)
SHM_CORRUPT = "shm-corrupt"

#: host-level kinds strike real OS processes/segments, not the model;
#: they require the processes backend with supervision enabled.  Kept
#: out of FAULT_KINDS so virtual-plan generators and round-trip
#: consumers keep their historical domain.
HOST_FAULT_KINDS = (WORKER_CRASH, WORKER_HANG, SHM_CORRUPT)

ALL_FAULT_KINDS = FAULT_KINDS + HOST_FAULT_KINDS


@dataclass
class FaultSpec:
    """One planned fault.

    ``iteration`` is the superstep at which the fault becomes pending
    (at-or-after semantics, see module docstring).  ``count`` is the
    number of consecutive failures for ``transient-comm`` (a retry loop
    must survive ``count`` raises before the transfer goes through).
    ``factor``/``duration`` parameterize stragglers.  ``dst`` optionally
    restricts a transient-comm fault to one outgoing link.
    """

    kind: str
    gpu: int
    iteration: int
    count: int = 1
    factor: float = 4.0
    duration: int = 1
    dst: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise SimulationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{ALL_FAULT_KINDS}"
            )
        if self.gpu < 0 or self.iteration < 0:
            raise SimulationError(
                f"fault gpu/iteration must be >= 0, got "
                f"gpu={self.gpu} iteration={self.iteration}"
            )
        if self.count < 1:
            raise SimulationError(f"fault count must be >= 1, got {self.count}")

    def to_dict(self) -> dict:
        d = {
            "kind": self.kind,
            "gpu": int(self.gpu),
            "iteration": int(self.iteration),
        }
        if self.kind == TRANSIENT_COMM:
            d["count"] = int(self.count)
            if self.dst is not None:
                d["dst"] = int(self.dst)
        if self.kind == STRAGGLER:
            d["factor"] = float(self.factor)
            d["duration"] = int(self.duration)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSpec":
        return cls(
            kind=d["kind"],
            gpu=int(d["gpu"]),
            iteration=int(d["iteration"]),
            count=int(d.get("count", 1)),
            factor=float(d.get("factor", 4.0)),
            duration=int(d.get("duration", 1)),
            dst=None if d.get("dst") is None else int(d["dst"]),
        )


@dataclass
class FaultPlan:
    """A serializable, optionally seeded list of planned faults."""

    faults: List[FaultSpec] = field(default_factory=list)
    seed: Optional[int] = None

    def validate(self, num_gpus: int) -> None:
        for spec in self.faults:
            if spec.gpu >= num_gpus:
                raise SimulationError(
                    f"fault targets GPU {spec.gpu} but the machine has "
                    f"{num_gpus} GPUs", gpu_id=spec.gpu, site="faults.plan",
                )
            if spec.dst is not None and spec.dst >= num_gpus:
                raise SimulationError(
                    f"fault link dst {spec.dst} out of range for "
                    f"{num_gpus} GPUs", gpu_id=spec.gpu, site="faults.plan",
                )
        losses = [s for s in self.faults if s.kind == GPU_LOSS]
        if len({s.gpu for s in losses}) >= num_gpus:
            raise SimulationError(
                "fault plan loses every GPU; at least one must survive",
                site="faults.plan",
            )

    # -- serialization -------------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "version": 1,
            "seed": self.seed,
            "faults": [s.to_dict() for s in self.faults],
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        if not isinstance(payload, dict) or "faults" not in payload:
            raise SimulationError(
                "malformed fault plan JSON: expected an object with a "
                "'faults' list", site="faults.plan",
            )
        return cls(
            faults=[FaultSpec.from_dict(d) for d in payload["faults"]],
            seed=payload.get("seed"),
        )

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    # -- generation ----------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        num_gpus: int,
        num_faults: int = 3,
        max_iteration: int = 6,
        kinds: Sequence[str] = FAULT_KINDS,
    ) -> "FaultPlan":
        """A seeded random plan: same seed, same machine → same plan.

        At most one permanent GPU loss is generated so the machine always
        has survivors to recover onto.
        """
        rng = np.random.default_rng(seed)
        faults: List[FaultSpec] = []
        lost = False
        for _ in range(num_faults):
            kind = str(rng.choice(list(kinds)))
            if kind == GPU_LOSS and (lost or num_gpus < 2):
                kind = TRANSIENT_COMM
            gpu = int(rng.integers(0, num_gpus))
            iteration = int(rng.integers(0, max_iteration + 1))
            if kind == TRANSIENT_COMM:
                faults.append(FaultSpec(kind, gpu, iteration,
                                        count=int(rng.integers(1, 4))))
            elif kind == OOM:
                faults.append(FaultSpec(kind, gpu, iteration))
            elif kind == STRAGGLER:
                faults.append(FaultSpec(
                    kind, gpu, iteration,
                    factor=float(rng.uniform(2.0, 8.0)),
                    duration=int(rng.integers(1, 4)),
                ))
            else:
                faults.append(FaultSpec(kind, gpu, iteration))
                lost = True
        return cls(faults=faults, seed=seed)


class FaultInjector:
    """Arms a :class:`FaultPlan` against a machine and fires its faults.

    The injector is shared by the interconnect and every memory pool;
    consumption is guarded by a lock so the threads backend observes the
    same firing sequence as the serial backend.
    """

    def __init__(self, plan: FaultPlan, num_gpus: int):
        plan.validate(num_gpus)
        self.plan = plan
        self.num_gpus = num_gpus
        self._lock = threading.Lock()
        #: how many faults of each kind actually fired
        self.injected: Dict[str, int] = {}
        self._iter: Dict[int, int] = {}
        self._comm: List[List] = []
        self._oom: List[FaultSpec] = []
        self._loss: List[FaultSpec] = []
        self._stragglers: List[FaultSpec] = []
        self._host: List[FaultSpec] = []
        self.reset()

    def reset(self) -> None:
        """Re-arm the plan from scratch (called by ``Machine.reset``)."""
        with self._lock:
            self.injected = {k: 0 for k in ALL_FAULT_KINDS}
            self._iter = {}
            # mutable [spec, remaining_failures] cells for transient faults
            self._comm = [[s, s.count] for s in self.plan.faults
                          if s.kind == TRANSIENT_COMM]
            self._oom = [s for s in self.plan.faults if s.kind == OOM]
            self._loss = [s for s in self.plan.faults if s.kind == GPU_LOSS]
            self._stragglers = [s for s in self.plan.faults
                                if s.kind == STRAGGLER]
            self._host = [s for s in self.plan.faults
                          if s.kind in HOST_FAULT_KINDS]

    def has_host_faults(self) -> bool:
        """Whether the plan contains any host-level (real-process) kinds."""
        return any(s.kind in HOST_FAULT_KINDS for s in self.plan.faults)

    def take_due_host_faults(
        self, iteration: int, only_gpus=None
    ) -> List[FaultSpec]:
        """Consume and return the host-level faults due at ``iteration``.

        Host faults strike real OS processes, so they are consumed
        *parent-side only* — the supervisor calls this before dispatch
        (and again before a replay) and delivers the signals/corruption
        itself.  At most one spec per GPU is consumed per call, so a
        plan with two ``worker-crash`` specs on the same GPU kills the
        worker once at dispatch and again at replay, exercising the
        same-superstep-dies-twice escalation to rollback.  A replay
        passes ``only_gpus`` (the respawned worker's bucket) so specs
        aimed at other workers stay pending for their own handling.
        """
        taken: List[FaultSpec] = []
        with self._lock:
            seen: set = set()
            for spec in list(self._host):
                if only_gpus is not None and spec.gpu not in only_gpus:
                    continue
                if iteration >= spec.iteration and spec.gpu not in seen:
                    self._host.remove(spec)
                    seen.add(spec.gpu)
                    self._count(spec.kind)
                    taken.append(spec)
        return taken

    # -- superstep bookkeeping ----------------------------------------------
    def begin_superstep(self, gpu: int, iteration: int) -> None:
        """Record that ``gpu`` is executing ``iteration``.

        Allocation sites have no iteration argument of their own; the
        injector attributes them to the superstep the owning GPU is in.
        """
        with self._lock:
            self._iter[gpu] = iteration

    def end_iteration(self) -> None:
        """Clear per-GPU iteration context at the barrier.

        Allocations made outside a superstep (setup, recovery) are never
        fault candidates.
        """
        with self._lock:
            self._iter.clear()

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    # -- fault sites ---------------------------------------------------------
    def check_gpu_loss(self, gpu: int, iteration: int) -> None:
        """Superstep-start site: raise DeviceLostError if a loss is due."""
        with self._lock:
            for spec in self._loss:
                if spec.gpu == gpu and iteration >= spec.iteration:
                    self._loss.remove(spec)
                    self._count(GPU_LOSS)
                    raise DeviceLostError(
                        "injected permanent device loss",
                        gpu_id=gpu, iteration=iteration,
                        site=f"machine.gpu[{gpu}]",
                    )

    def check_comm(self, src: int, dst: int, iteration: Optional[int]) -> None:
        """Transfer site: raise a transient CommunicationError if due."""
        if iteration is None:
            return
        with self._lock:
            for cell in self._comm:
                spec, remaining = cell
                if (spec.gpu == src and iteration >= spec.iteration
                        and (spec.dst is None or spec.dst == dst)
                        and remaining > 0):
                    cell[1] = remaining - 1
                    if cell[1] == 0:
                        self._comm.remove(cell)
                    self._count(TRANSIENT_COMM)
                    raise CommunicationError(
                        "injected transient link failure",
                        gpu_id=src, iteration=iteration,
                        site=f"interconnect.send[{src}->{dst}]",
                    )

    def check_alloc(self, gpu: Optional[int], name: str) -> None:
        """Allocation site: raise DeviceMemoryError once if an OOM is due."""
        if gpu is None:
            return
        with self._lock:
            iteration = self._iter.get(gpu)
            if iteration is None:
                return
            for spec in self._oom:
                if spec.gpu == gpu and iteration >= spec.iteration:
                    self._oom.remove(spec)
                    self._count(OOM)
                    raise DeviceMemoryError(
                        "injected allocation failure",
                        gpu_id=gpu, iteration=iteration,
                        site=f"memory.alloc[{name}]",
                    )

    # -- cross-process consumption sync ---------------------------------
    # Each fault spec targets exactly one GPU, and under the processes
    # backend that GPU's worker holds its own forked injector copy — so a
    # spec is only ever consumed in one address space.  The worker
    # snapshots consumption before the superstep, diffs after, and the
    # parent replays the delta; specs are identified by their position in
    # ``plan.faults`` (stable across fork, robust to equal duplicates).

    def snapshot_consumption(self) -> dict:
        """Picklable snapshot of which faults remain armed."""
        with self._lock:
            pos = {id(s): i for i, s in enumerate(self.plan.faults)}
            return {
                "injected": dict(self.injected),
                "comm": {pos[id(s)]: rem for s, rem in self._comm},
                "oom": [pos[id(s)] for s in self._oom],
                "loss": [pos[id(s)] for s in self._loss],
            }

    def consumption_delta(self, before: dict) -> Optional[dict]:
        """What fired since ``before`` (a :meth:`snapshot_consumption`);
        None when nothing did."""
        after = self.snapshot_consumption()
        injected = {
            k: v - before["injected"].get(k, 0)
            for k, v in after["injected"].items()
            if v != before["injected"].get(k, 0)
        }
        comm_decremented = {
            p: rem for p, rem in after["comm"].items()
            if before["comm"].get(p) != rem
        }
        comm_exhausted = [p for p in before["comm"] if p not in after["comm"]]
        oom_fired = [p for p in before["oom"] if p not in after["oom"]]
        loss_fired = [p for p in before["loss"] if p not in after["loss"]]
        if not (injected or comm_decremented or comm_exhausted
                or oom_fired or loss_fired):
            return None
        return {
            "injected": injected,
            "comm_decremented": comm_decremented,
            "comm_exhausted": comm_exhausted,
            "oom_fired": oom_fired,
            "loss_fired": loss_fired,
        }

    def apply_consumption_delta(self, delta: dict) -> None:
        """Replay a worker's :meth:`consumption_delta` on this injector."""
        with self._lock:
            for kind, fired in delta["injected"].items():
                self.injected[kind] = self.injected.get(kind, 0) + fired
            spec_at = self.plan.faults
            for p, rem in delta["comm_decremented"].items():
                for cell in self._comm:
                    if cell[0] is spec_at[p]:
                        cell[1] = rem
            for p in delta["comm_exhausted"]:
                self._comm = [
                    c for c in self._comm if c[0] is not spec_at[p]
                ]
            for p in delta["oom_fired"]:
                self._oom = [s for s in self._oom if s is not spec_at[p]]
            for p in delta["loss_fired"]:
                self._loss = [s for s in self._loss if s is not spec_at[p]]

    def straggler_factor(self, gpu: int, iteration: int) -> float:
        """Compute-time multiplier for ``gpu`` at ``iteration`` (1.0 = none)."""
        factor = 1.0
        with self._lock:
            for spec in self._stragglers:
                if (spec.gpu == gpu
                        and spec.iteration <= iteration
                        < spec.iteration + spec.duration):
                    factor *= spec.factor
                    self._count(STRAGGLER)
        return factor
