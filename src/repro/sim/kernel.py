"""Kernel cost model.

Charges virtual time for GPU kernels from first principles the paper's
analysis uses: a fixed launch overhead (~3 µs, Section V-B) plus memory
traffic divided by effective bandwidth.  Graph kernels are memory-bound,
so traffic — not FLOPs — is the cost driver; the advance operator's
traffic is dominated by random gathers (neighbor lists, label lookups),
filters by streaming passes.

All byte counts passed in are *logical* (stand-in dataset sizes); the
model multiplies by the machine's workload ``scale`` (DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec

__all__ = ["KernelCost", "KernelModel"]


@dataclass(frozen=True)
class KernelCost:
    """Breakdown of one kernel's charged time."""

    launch: float
    traffic: float

    @property
    def total(self) -> float:
        return self.launch + self.traffic


class KernelModel:
    """Computes kernel durations for a device at a given workload scale."""

    def __init__(self, spec: DeviceSpec, scale: float = 1.0):
        self.spec = spec
        self.scale = float(scale)

    def kernel_time(
        self,
        streaming_bytes: float = 0.0,
        random_bytes: float = 0.0,
        launches: int = 1,
        atomic_ops: float = 0.0,
    ) -> KernelCost:
        """Time for a (possibly fused) kernel.

        Parameters
        ----------
        streaming_bytes:
            Coalesced sequential traffic (frontier reads, offset scans).
        random_bytes:
            Gather/scatter traffic (neighbor lists, label arrays).
        launches:
            Number of kernel launches charged (fusion reduces this).
        atomic_ops:
            Number of global atomics; charged at 1/4 of random-access item
            bandwidth, reflecting serialization on contended lines (this is
            the cost that limits Bisson et al.'s atomic-heavy BFS,
            Section II-A).
        """
        launch = launches * self.spec.kernel_launch_overhead
        t = 0.0
        if streaming_bytes > 0:
            t += (streaming_bytes * self.scale) / self.spec.effective_bandwidth(False)
        if random_bytes > 0:
            t += (random_bytes * self.scale) / self.spec.effective_bandwidth(True)
        if atomic_ops > 0:
            # model atomics as 8-byte random accesses at 1/4 efficiency
            t += (atomic_ops * 8 * self.scale) / (
                self.spec.effective_bandwidth(True) * 0.25
            )
        return KernelCost(launch=launch, traffic=t)

    def memcpy_time(self, nbytes: float) -> float:
        """Device-local copy (used by reallocation's malloc+copy)."""
        if nbytes <= 0:
            return self.spec.kernel_launch_overhead
        return (
            self.spec.kernel_launch_overhead
            + (2 * nbytes * self.scale) / self.spec.effective_bandwidth(False)
        )
