"""The multi-GPU machine: devices + interconnect + virtual clock.

A :class:`Machine` is the substrate every experiment runs on.  Factory
helpers build the paper's three test systems:

* :func:`k40_node` — 6x Tesla K40 (the main results node);
* :func:`k80_node` — 4x Tesla K80 boards = 8 GPUs (Fig. 5 system 1);
* :func:`p100_node` — 4x Tesla P100 (Fig. 5 system 2).
"""

from __future__ import annotations

from typing import List, Optional, Set

from .clock import VirtualClock
from .device import K40, K80_HALF, P100, DeviceSpec, VirtualGPU
from .interconnect import Interconnect, LinkSpec
from .kernel import KernelModel

__all__ = ["Machine", "k40_node", "k80_node", "p100_node", "multi_node_cluster", "DEFAULT_SCALE"]

#: Default workload scale: stand-in datasets are ~2^10 smaller than the
#: paper's, so each logical byte is charged as 1024 bytes (DESIGN.md).
DEFAULT_SCALE = 1024.0


class Machine:
    """A single node with ``num_gpus`` identical GPUs.

    Parameters
    ----------
    num_gpus:
        Device count (the paper uses 1-8).
    spec:
        Per-GPU hardware constants.
    scale:
        Workload scale multiplier applied to all bandwidth-proportional
        costs and memory accounting.
    peer_group_size, peer_link, host_link:
        Interconnect configuration (defaults follow the paper's PCIe3
        node with peer access in groups of 4).
    """

    def __init__(
        self,
        num_gpus: int,
        spec: DeviceSpec = K40,
        scale: float = DEFAULT_SCALE,
        peer_group_size: int = 4,
        peer_link: Optional[LinkSpec] = None,
        host_link: Optional[LinkSpec] = None,
    ):
        if num_gpus < 1:
            raise ValueError("num_gpus must be positive")
        self.num_gpus = num_gpus
        self.spec = spec
        self.scale = float(scale)
        self.clock = VirtualClock()
        kwargs = {}
        if peer_link is not None:
            kwargs["peer_link"] = peer_link
        if host_link is not None:
            kwargs["host_link"] = host_link
        self.interconnect = Interconnect(
            num_gpus, peer_group_size=peer_group_size, scale=self.scale, **kwargs
        )
        self.gpus: List[VirtualGPU] = [
            VirtualGPU.create(i, spec, self.scale) for i in range(num_gpus)
        ]
        self.kernel_model = KernelModel(spec, self.scale)
        #: armed FaultInjector, or None (the common, zero-overhead case)
        self.faults = None
        #: attached obs.Tracer, or None (same zero-overhead discipline)
        self.tracer = None
        #: permanently lost GPU ids (degraded mode); shared with the
        #: interconnect so transfers to a dead device are refused
        self.lost_gpus: Set[int] = set()

    def gpu(self, i: int) -> VirtualGPU:
        return self.gpus[i]

    @property
    def alive_gpus(self) -> List[int]:
        """Indices of GPUs still operating (all of them until a loss)."""
        if not self.lost_gpus:
            return list(range(self.num_gpus))
        return [i for i in range(self.num_gpus) if i not in self.lost_gpus]

    def lose_gpu(self, gpu: int) -> None:
        """Mark ``gpu`` permanently lost (degraded mode).

        The device's streams and memory are abandoned as-is; the
        interconnect starts refusing links that touch it.  Loss is not
        undone by :meth:`reset` — it models broken hardware.
        """
        if not 0 <= gpu < self.num_gpus:
            raise ValueError(f"GPU id {gpu} out of range")
        self.lost_gpus.add(gpu)
        self.interconnect.lost_gpus = self.lost_gpus

    def arm_faults(self, plan) -> "object":
        """Arm a :class:`~repro.sim.faults.FaultPlan` (or an injector).

        Returns the armed :class:`~repro.sim.faults.FaultInjector`.  The
        injector is shared with the interconnect and every GPU's memory
        pool; all their hot-path hooks stay single ``is None`` checks
        when nothing is armed.
        """
        from .faults import FaultInjector, FaultPlan

        if isinstance(plan, FaultPlan):
            injector = FaultInjector(plan, self.num_gpus)
        else:
            injector = plan
        self.faults = injector
        self.interconnect.faults = injector
        for g in self.gpus:
            g.memory.faults = injector
        return injector

    def disarm_faults(self) -> None:
        """Remove any armed fault injector (hooks become no-ops again)."""
        self.faults = None
        self.interconnect.faults = None
        for g in self.gpus:
            g.memory.faults = None

    def attach_tracer(self, tracer) -> "object":
        """Attach an :class:`~repro.obs.tracer.Tracer` to the machine.

        Shared with the interconnect — same sharing shape as
        :meth:`arm_faults`, and like it, every hook site stays a single
        ``is None`` check when nothing is attached (lint rule REP109).
        """
        self.tracer = tracer
        self.interconnect.tracer = tracer
        return tracer

    def detach_tracer(self) -> None:
        """Remove any attached tracer (hooks become no-ops again)."""
        self.tracer = None
        self.interconnect.tracer = None

    def reset(self) -> None:
        """Reset all timelines and traffic counters (memory stays).

        An armed fault plan is re-armed from scratch so that repeated
        ``enact()`` calls replay the same fault sequence deterministically.
        Lost GPUs stay lost (hardware does not heal on reset).
        """
        self.clock.reset()
        self.interconnect.reset_counters()
        for g in self.gpus:
            g.reset_time()
        if self.faults is not None:
            self.faults.reset()

    def barrier(
        self, extra_latency: bool = True, compute_only: bool = False
    ) -> float:
        """Synchronize all GPUs: advance every stream to the global max.

        Models the end-of-iteration synchronization point of the BSP loop.
        When ``extra_latency`` is true, the inter-GPU synchronization cost
        l(n) from the paper's Section V-B measurement is added.

        With ``compute_only`` the barrier waits only for the *compute*
        streams — in-flight transfers on the communication streams keep
        draining into the next superstep, which is Gunrock's
        ``cudaStreamWaitEvent``-based compute/communication overlap
        (Section III-B "Manage GPUs"): receivers block on the specific
        arrival events they need, not on a global flush.

        In degraded mode only surviving GPUs participate: lost devices
        neither contribute to nor pay the synchronization cost.

        Returns the post-barrier time.
        """
        if self.lost_gpus:
            gpus = [g for i, g in enumerate(self.gpus)
                    if i not in self.lost_gpus]
        else:
            gpus = self.gpus
        if compute_only:
            t = max((g.compute.available_at for g in gpus), default=0.0)
        else:
            t = max((g.busy_until() for g in gpus), default=0.0)
        sync = self.interconnect.sync_latency(len(gpus)) if extra_latency else 0.0
        t += sync
        for g in gpus:
            streams = [g.compute] if compute_only else list(g.streams.values())
            for s in streams:
                s.available_at = max(s.available_at, t)
        self.clock.advance_to(t)
        if self.tracer is not None:
            self.tracer.instant(
                "barrier",
                vt=t,
                gpus=len(gpus),
                sync=sync,
                compute_only=bool(compute_only),
            )
        return t

    def describe(self) -> str:
        return (
            f"{self.num_gpus}x {self.spec.name}, "
            f"peer groups of {self.interconnect.peer_group_size}, "
            f"scale={self.scale:g}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Machine({self.describe()})"


def k40_node(num_gpus: int = 6, scale: float = DEFAULT_SCALE) -> Machine:
    """The paper's main test node: up to 6 Tesla K40s on PCIe3."""
    return Machine(num_gpus, spec=K40, scale=scale)


def k80_node(num_gpus: int = 8, scale: float = DEFAULT_SCALE) -> Machine:
    """Fig. 5 system 1: 4 K80 boards = 8 GPUs; peer access per board pair."""
    return Machine(num_gpus, spec=K80_HALF, scale=scale, peer_group_size=4)


def p100_node(num_gpus: int = 4, scale: float = DEFAULT_SCALE) -> Machine:
    """Fig. 5 system 2: 4 Tesla P100 (PCIe)."""
    return Machine(num_gpus, spec=P100, scale=scale)


def multi_node_cluster(
    num_nodes: int,
    gpus_per_node: int = 4,
    spec: DeviceSpec = K40,
    scale: float = DEFAULT_SCALE,
    inter_node_link: Optional[LinkSpec] = None,
) -> Machine:
    """A scale-out configuration: the paper's Section VIII open question.

    Models ``num_nodes`` nodes of ``gpus_per_node`` GPUs each.  Intra-node
    transfers use PCIe peer links; inter-node transfers use
    ``inter_node_link`` (default: an InfiniBand-class 6 GB/s, 10 µs
    link).  Implemented as one Machine whose peer groups are the nodes —
    the framework's algorithms run unchanged, which is itself the paper's
    claim about abstraction generality.
    """
    from .interconnect import LinkSpec as _LinkSpec

    link = inter_node_link or _LinkSpec("infiniband", 6e9, 10e-6)
    return Machine(
        num_nodes * gpus_per_node,
        spec=spec,
        scale=scale,
        peer_group_size=gpus_per_node,
        host_link=link,
    )
