"""Inter-GPU interconnect model.

Reproduces the communication fabric of the paper's test nodes
(Section V-A):

* GPUs on the same PCIe3 root hub can enable *peer access*:
  ~20 GB/s bandwidth, ~7.5 µs latency;
* otherwise transfers stage through host memory: ~16 GB/s, ~25 µs;
* "direct peer-to-peer inter-GPU communication is enabled in groups of 4
  GPUs" (Section VII-A) — so a 6-GPU node has peer groups {0..3} and
  {4,5}, and cross-group traffic pays the host path.

Per-iteration synchronization latency follows the measured values of the
paper's minimal-workload experiment (Section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from ..errors import CommunicationError

__all__ = ["LinkSpec", "PCIE3_PEER", "PCIE3_HOST", "NVLINK", "Interconnect"]


@dataclass(frozen=True)
class LinkSpec:
    """One link type: bandwidth (bytes/s) and per-message latency (s)."""

    name: str
    bandwidth: float
    latency: float


#: PCIe3 with peer access enabled (paper: ~20 GB/s, ~7.5 µs).
PCIE3_PEER = LinkSpec("pcie3-peer", 20e9, 7.5e-6)

#: PCIe3 staged through the host (paper: ~16 GB/s, ~25 µs).
PCIE3_HOST = LinkSpec("pcie3-host", 16e9, 25e-6)

#: NVLink 1.0 (not used by the paper's nodes; provided for what-if
#: experiments on the communication-bound DOBFS case).
NVLINK = LinkSpec("nvlink", 80e9, 2e-6)

#: Measured per-iteration overhead l for 1..4 GPUs, seconds
#: (paper Section V-B: {66.8, 124, 142, 188} µs).  The 1-GPU value is
#: carried by DeviceSpec.iteration_overhead + kernel launches; entries here
#: are the *additional* multi-GPU synchronization cost.
_SYNC_TABLE_US = [0.0, 57.2, 75.2, 121.2]
_SYNC_SLOPE_US = 33.0  # extrapolation per GPU beyond 4


class Interconnect:
    """Pairwise link model with peer groups.

    Parameters
    ----------
    num_gpus:
        Number of devices on the node.
    peer_group_size:
        GPUs are grouped in contiguous blocks of this size; intra-block
        transfers use ``peer_link``, inter-block use ``host_link``.
    peer_link, host_link:
        The two link specs.
    scale:
        Workload scale multiplier: transferred logical bytes are charged
        as ``bytes * scale`` (see DESIGN.md "Workload scaling").
    """

    def __init__(
        self,
        num_gpus: int,
        peer_group_size: int = 4,
        peer_link: LinkSpec = PCIE3_PEER,
        host_link: LinkSpec = PCIE3_HOST,
        scale: float = 1.0,
    ):
        if num_gpus < 1:
            raise ValueError("num_gpus must be positive")
        if peer_group_size < 1:
            raise ValueError("peer_group_size must be positive")
        self.num_gpus = num_gpus
        self.peer_group_size = peer_group_size
        self.peer_link = peer_link
        self.host_link = host_link
        self.scale = float(scale)
        self.total_bytes = 0  # scaled bytes moved, for reporting
        self.total_messages = 0
        #: armed FaultInjector, or None (the common, zero-overhead case)
        self.faults = None
        #: attached obs.Tracer, or None (shared by Machine.attach_tracer)
        self.tracer = None
        #: GPUs lost permanently; transfers touching them are refused
        #: (shared with Machine.lost_gpus once a loss occurs)
        self.lost_gpus: Set[int] = set()

    def _check(self, gpu: int) -> None:
        if not 0 <= gpu < self.num_gpus:
            raise CommunicationError(
                f"GPU id {gpu} out of range [0, {self.num_gpus})",
                gpu_id=gpu, site="interconnect.link",
            )

    def link(self, src: int, dst: int) -> LinkSpec:
        """The link used between two distinct GPUs."""
        self._check(src)
        self._check(dst)
        if src == dst:
            raise CommunicationError(
                "no link from a GPU to itself",
                gpu_id=src, site="interconnect.link",
            )
        if self.lost_gpus and (src in self.lost_gpus or dst in self.lost_gpus):
            lost = src if src in self.lost_gpus else dst
            raise CommunicationError(
                f"link endpoint GPU {lost} was lost",
                gpu_id=lost, site=f"interconnect.link[{src}->{dst}]",
            )
        if src // self.peer_group_size == dst // self.peer_group_size:
            return self.peer_link
        return self.host_link

    def transfer_cost(
        self, src: int, dst: int, nbytes: int, latency_scale: float = 1.0,
        iteration: Optional[int] = None,
    ) -> float:
        """Time to move ``nbytes`` logical bytes from ``src`` to ``dst``.

        Pure — no counters are touched, so per-GPU superstep workers may
        call it concurrently and stage the traffic for
        :meth:`record_transfer` at the barrier.  Zero-byte messages still
        pay latency (the frontier-length exchange each iteration is such
        a message).  ``latency_scale`` supports the paper's Section V-A
        sensitivity experiment (latency inflated 10x showed "no
        appreciable difference").

        ``iteration`` is fault-injection context: when a
        :class:`~repro.sim.faults.FaultInjector` is armed, a pending
        transient fault on this link raises
        :class:`~repro.errors.CommunicationError` instead of returning a
        cost (the caller's retry loop then re-invokes at backoff cost).
        """
        if nbytes < 0:
            raise CommunicationError(
                "negative transfer size",
                gpu_id=src, iteration=iteration,
                site=f"interconnect.send[{src}->{dst}]",
            )
        if self.faults is not None:
            self.faults.check_comm(src, dst, iteration)
        lk = self.link(src, dst)
        if self.tracer is not None:
            # observation only: staged per-GPU when a worker calls this
            self.tracer.instant(
                "comm.transfer", src=src, dst=dst,
                nbytes=int(nbytes), link=lk.name,
            )
        return lk.latency * latency_scale + nbytes * self.scale / lk.bandwidth

    def record_transfer(self, nbytes: int) -> None:
        """Record one message of ``nbytes`` logical bytes in the traffic
        counters (scaled, with the same per-message rounding as ever)."""
        self.total_bytes += int(nbytes * self.scale)
        self.total_messages += 1

    def transfer_time(
        self, src: int, dst: int, nbytes: int, latency_scale: float = 1.0
    ) -> float:
        """:meth:`transfer_cost` plus immediate :meth:`record_transfer` —
        the original single-caller convenience."""
        cost = self.transfer_cost(src, dst, nbytes, latency_scale)
        self.record_transfer(nbytes)
        return cost

    def sync_latency(self, num_active_gpus: int) -> float:
        """Extra per-iteration barrier cost for ``num_active_gpus`` GPUs.

        Calibrated against the paper's measured {66.8, 124, 142, 188} µs
        per-iteration times for 1-4 GPUs (the 1-GPU part lives in the
        device model); extrapolated linearly beyond 4.
        """
        n = num_active_gpus
        if n <= 0:
            return 0.0
        if n <= len(_SYNC_TABLE_US):
            return _SYNC_TABLE_US[n - 1] * 1e-6
        extra = (n - len(_SYNC_TABLE_US)) * _SYNC_SLOPE_US
        return (_SYNC_TABLE_US[-1] + extra) * 1e-6

    def reset_counters(self) -> None:
        self.total_bytes = 0
        self.total_messages = 0
