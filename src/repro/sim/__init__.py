"""Virtual multi-GPU machine: devices, memory, interconnect, cost model.

This package is the substitution for the paper's physical GPU nodes (see
DESIGN.md): correctness-bearing computation runs in NumPy, while time is
charged on virtual streams by a calibrated cost model, reproducing the
BSP ``W + H*g + S*l`` behaviour the paper analyzes.
"""

from .clock import VirtualClock
from .device import K40, K80_HALF, P100, DeviceSpec, VirtualGPU
from .faults import (
    FAULT_KINDS,
    GPU_LOSS,
    OOM,
    STRAGGLER,
    TRANSIENT_COMM,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from .interconnect import NVLINK, PCIE3_HOST, PCIE3_PEER, Interconnect, LinkSpec
from .kernel import KernelCost, KernelModel
from .machine import DEFAULT_SCALE, Machine, k40_node, k80_node, p100_node
from .memory import (
    AllocationScheme,
    FixedPrealloc,
    JustEnough,
    MaxAlloc,
    MemoryPool,
    PreallocFusion,
    scheme_by_name,
)
from .metrics import IterationRecord, RunMetrics
from .stream import Event, Stream

__all__ = [
    "VirtualClock",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "FAULT_KINDS",
    "TRANSIENT_COMM",
    "OOM",
    "STRAGGLER",
    "GPU_LOSS",
    "DeviceSpec",
    "VirtualGPU",
    "K40",
    "K80_HALF",
    "P100",
    "Interconnect",
    "LinkSpec",
    "PCIE3_PEER",
    "PCIE3_HOST",
    "NVLINK",
    "KernelModel",
    "KernelCost",
    "Machine",
    "k40_node",
    "k80_node",
    "p100_node",
    "DEFAULT_SCALE",
    "MemoryPool",
    "AllocationScheme",
    "JustEnough",
    "FixedPrealloc",
    "MaxAlloc",
    "PreallocFusion",
    "scheme_by_name",
    "IterationRecord",
    "RunMetrics",
    "Event",
    "Stream",
]
