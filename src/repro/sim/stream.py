"""Virtual CUDA streams and events.

Gunrock overlaps computation and communication by putting them on
different ``cudaStream_t``\\ s and expressing cross-GPU dependencies with
``cudaStreamWaitEvent`` (paper Section III-B).  We reproduce exactly that
scheduling discipline on virtual time:

* a :class:`Stream` is a FIFO work queue with an ``available_at`` horizon;
* launching work of duration ``d`` at earliest-start ``t0`` occupies the
  stream for ``[start, start+d)`` where ``start = max(t0, available_at)``;
* an :class:`Event` records a completion time; ``wait_event`` pushes a
  stream's horizon past it without any host intervention, exactly like
  ``cudaStreamWaitEvent``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..errors import SimulationError

__all__ = ["Event", "Stream"]


@dataclass(frozen=True)
class Event:
    """A point on the virtual timeline (analogue of ``cudaEvent_t``)."""

    timestamp: float
    label: str = ""


@dataclass
class Stream:
    """An in-order virtual work queue (analogue of ``cudaStream_t``)."""

    name: str
    available_at: float = 0.0
    #: (start, end, label) of every operation launched, for introspection.
    history: List[Tuple[float, float, str]] = field(default_factory=list)
    record_history: bool = False

    def launch(self, duration: float, earliest_start: float = 0.0,
               label: str = "") -> Event:
        """Enqueue work of ``duration`` seconds; return its completion event.

        ``earliest_start`` expresses data dependencies (e.g. an incoming
        transfer); the work cannot begin before both the stream is free and
        the dependency is satisfied.
        """
        if duration < 0:
            raise SimulationError(f"negative duration: {duration}")
        start = max(self.available_at, earliest_start)
        end = start + duration
        self.available_at = end
        if self.record_history:
            self.history.append((start, end, label))
        return Event(end, label)

    def wait_event(self, event: Event) -> None:
        """``cudaStreamWaitEvent``: future work waits for ``event``."""
        self.available_at = max(self.available_at, event.timestamp)

    def record_event(self, label: str = "") -> Event:
        """``cudaEventRecord``: an event that fires when the queue drains."""
        return Event(self.available_at, label)

    def reset(self) -> None:
        self.available_at = 0.0
        self.history.clear()
