"""Virtual GPU devices.

:class:`DeviceSpec` captures the hardware constants the paper's BSP
analysis depends on — memory capacity, memory bandwidth, kernel-launch
overhead — for the three GPU models used in the evaluation (K40, K80,
P100).  :class:`VirtualGPU` is one device instance: a memory pool plus a
set of virtual streams.

Bandwidth numbers are the published peak DRAM bandwidths; the *effective*
bandwidth achieved by graph kernels is peak times an access-efficiency
factor (regular streaming vs. random gather/scatter), which is how real
GPU traversal kernels behave (Merrill et al. report roughly 1/3 of peak for
BFS).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .memory import MemoryPool
from .stream import Stream

__all__ = ["DeviceSpec", "K40", "K80_HALF", "P100", "VirtualGPU"]

GB = 1024**3


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware constants of one GPU model.

    Attributes
    ----------
    name:
        Marketing name.
    memory_bytes:
        DRAM capacity per GPU.
    mem_bandwidth:
        Peak DRAM bandwidth, bytes/second.
    kernel_launch_overhead:
        Fixed cost per kernel launch (~3 µs on Kepler, paper Section V-B).
    streaming_efficiency:
        Fraction of peak bandwidth achieved by coalesced streaming access.
    random_efficiency:
        Fraction of peak bandwidth achieved by random gather/scatter —
        graph traversal is dominated by this regime.
    iteration_overhead:
        Per-iteration framework overhead on one GPU (driver API calls,
        bookkeeping kernel launches).  Calibrated so that the paper's
        minimal-workload experiment (Section V-B: 66.8 µs/iteration on
        1 GPU) is reproduced.
    """

    name: str
    memory_bytes: int
    mem_bandwidth: float
    kernel_launch_overhead: float = 3e-6
    streaming_efficiency: float = 0.75
    random_efficiency: float = 0.33
    iteration_overhead: float = 60e-6

    def effective_bandwidth(self, random_access: bool) -> float:
        eff = self.random_efficiency if random_access else self.streaming_efficiency
        return self.mem_bandwidth * eff


#: Tesla K40: 12 GB GDDR5, 288 GB/s.  The paper's main 6-GPU test node.
K40 = DeviceSpec("Tesla K40", 12 * GB, 288e9)

#: One GPU of a Tesla K80 board: 12 GB, 240 GB/s.  4 boards = 8 GPUs
#: (Fig. 5 strong/weak scaling system 1).
K80_HALF = DeviceSpec("Tesla K80 (one GPU)", 12 * GB, 240e9)

#: Tesla P100 (PCIe, 16 GB HBM2, 732 GB/s).  Fig. 5 system 2: computation
#: is ~2.5x faster but inter-GPU bandwidth stays the same, which is what
#: makes DOBFS scaling *worse* on P100.
P100 = DeviceSpec("Tesla P100", 16 * GB, 732e9, kernel_launch_overhead=2.5e-6,
                  iteration_overhead=50e-6)


@dataclass
class VirtualGPU:
    """One simulated GPU: identity, memory pool, named streams."""

    device_id: int
    spec: DeviceSpec
    memory: MemoryPool
    streams: Dict[str, Stream] = field(default_factory=dict)

    @classmethod
    def create(cls, device_id: int, spec: DeviceSpec, scale: float) -> "VirtualGPU":
        gpu = cls(
            device_id=device_id,
            spec=spec,
            memory=MemoryPool(
                capacity=spec.memory_bytes,
                scale=scale,
                owner=f"GPU{device_id}",
                gpu_id=device_id,
            ),
        )
        # Gunrock separates computation and communication into different
        # streams to overlap them (paper Section III-B "Manage GPUs").
        gpu.streams["compute"] = Stream(f"gpu{device_id}.compute")
        gpu.streams["comm"] = Stream(f"gpu{device_id}.comm")
        return gpu

    @property
    def compute(self) -> Stream:
        return self.streams["compute"]

    @property
    def comm(self) -> Stream:
        return self.streams["comm"]

    def reset_time(self) -> None:
        for s in self.streams.values():
            s.reset()

    def busy_until(self) -> float:
        """Time at which every stream of this GPU has drained."""
        return max(s.available_at for s in self.streams.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualGPU(id={self.device_id}, spec={self.spec.name})"
