"""BSP counters and run metrics.

The paper analyzes every primitive with the BSP cost model
``W + H*g + S*l`` (Section V, Table I).  :class:`IterationRecord` captures
those quantities per iteration and per GPU as the enactor runs, so the
Table I validation benchmark can compare *measured* W/H/C/S against the
paper's complexity bounds, and runs can be inspected after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["IterationRecord", "RunMetrics"]


@dataclass
class IterationRecord:
    """Measured quantities of one BSP superstep."""

    iteration: int
    #: edges touched per GPU during local computation (the W term's driver)
    edges_visited: Dict[int, int] = field(default_factory=dict)
    #: vertices processed per GPU during local computation
    vertices_processed: Dict[int, int] = field(default_factory=dict)
    #: items sent per GPU (the H term): vertices plus associated values
    items_sent: Dict[int, int] = field(default_factory=dict)
    #: logical bytes sent per GPU
    bytes_sent: Dict[int, int] = field(default_factory=dict)
    #: communication-computation items processed per GPU (the C term:
    #: splitting, packaging, combining)
    comm_compute_items: Dict[int, int] = field(default_factory=dict)
    #: per-GPU virtual compute time for this superstep (seconds)
    compute_time: Dict[int, float] = field(default_factory=dict)
    #: per-GPU virtual communication time (seconds)
    comm_time: Dict[int, float] = field(default_factory=dict)
    #: wall duration of the superstep including the barrier (seconds)
    duration: float = 0.0
    #: global frontier size at the start of this iteration
    frontier_size: int = 0
    #: traversal direction, for DOBFS ("forward"/"backward"/"")
    direction: str = ""

    def total_edges(self) -> int:
        return sum(self.edges_visited.values())

    def total_items_sent(self) -> int:
        return sum(self.items_sent.values())


@dataclass
class RunMetrics:
    """Aggregated metrics of one primitive execution."""

    num_gpus: int
    primitive: str = ""
    dataset: str = ""
    iterations: List[IterationRecord] = field(default_factory=list)
    #: total virtual runtime, seconds
    elapsed: float = 0.0
    #: workload scale multiplier in effect (DESIGN.md "Workload scaling")
    scale: float = 1.0
    #: peak scaled memory per GPU, bytes
    peak_memory: Dict[int, int] = field(default_factory=dict)
    num_reallocs: int = 0
    #: BSP-contract hazards found by the opt-in race sanitizer
    #: (``Enactor(sanitize=True)``); ``None`` when the run was unsanitized
    sanitizer_hazards: Optional[List[dict]] = None

    # -- fault-recovery observability (docs/robustness.md) ----------------
    #: transient communication faults survived via retry
    comm_retries: int = 0
    #: virtual seconds spent in retry backoff across all GPUs
    retry_seconds: float = 0.0
    #: allocation failures survived by regrown (exact-fit) allocation
    oom_recoveries: int = 0
    #: checkpoint snapshots taken at barriers
    checkpoints_taken: int = 0
    #: logical bytes captured by the most recent checkpoint
    checkpoint_bytes: int = 0
    #: virtual seconds charged for taking checkpoints (critical path)
    checkpoint_seconds: float = 0.0
    #: rollbacks to a checkpoint after permanent GPU loss
    rollbacks: int = 0
    #: virtual seconds charged for restoring state after rollbacks
    restore_seconds: float = 0.0
    #: GPUs permanently lost during the run (degraded-mode set)
    degraded_gpus: List[int] = field(default_factory=list)

    # -- real-process supervision (processes backend + supervise=True) ----
    #: worker processes respawned after a detected crash/hang
    worker_respawns: int = 0
    #: per-GPU supersteps replayed after a respawn
    supersteps_replayed: int = 0
    #: hangs detected (stale heartbeat or superstep deadline exceeded)
    hang_detections: int = 0
    #: wall seconds of supervision overhead (shadow copies, checksums,
    #: fault delivery, respawn handling) — wall-clock, not virtual time
    supervision_overhead_seconds: float = 0.0

    # -- BSP aggregates ---------------------------------------------------
    @property
    def supersteps(self) -> int:
        """S in the BSP model."""
        return len(self.iterations)

    @property
    def total_edges_visited(self) -> int:
        """Logical edges touched across all GPUs and iterations."""
        return sum(r.total_edges() for r in self.iterations)

    @property
    def total_items_sent(self) -> int:
        """H: total communicated items."""
        return sum(r.total_items_sent() for r in self.iterations)

    @property
    def total_comm_compute(self) -> int:
        """C: total communication-computation items."""
        return sum(sum(r.comm_compute_items.values()) for r in self.iterations)

    def max_compute_time(self) -> float:
        """Sum over supersteps of the slowest GPU's compute time (W·g side)."""
        return sum(
            max(r.compute_time.values(), default=0.0) for r in self.iterations
        )

    def max_comm_time(self) -> float:
        return sum(
            max(r.comm_time.values(), default=0.0) for r in self.iterations
        )

    def gteps(self, edges_traversed: Optional[int] = None) -> float:
        """Billions of traversed edges per second, over *scaled* edges.

        ``edges_traversed`` defaults to the measured per-run total; for
        traversal primitives callers usually pass |E| of the connected
        component (the Graph500 convention the paper follows).
        """
        if self.elapsed <= 0:
            return 0.0
        edges = (
            self.total_edges_visited if edges_traversed is None else edges_traversed
        )
        return (edges * self.scale) / self.elapsed / 1e9

    def millions_of_teps(self, edges_traversed: Optional[int] = None) -> float:
        return self.gteps(edges_traversed) * 1e3

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"{self.primitive or 'run'} on {self.dataset or '?'} "
            f"[{self.num_gpus} GPU]: {self.elapsed * 1e3:.3f} ms, "
            f"S={self.supersteps}, W={self.total_edges_visited} edges, "
            f"H={self.total_items_sent} items, C={self.total_comm_compute}"
        )

    def load_imbalance(self) -> float:
        """Mean over supersteps of (slowest GPU compute / mean compute).

        1.0 = perfectly balanced; large values indicate straggler GPUs
        (the partitioner-quality signal of Section V-C).
        """
        ratios = []
        for rec in self.iterations:
            times = list(rec.compute_time.values())
            if not times:
                continue
            mean = sum(times) / len(times)
            if mean > 0:
                ratios.append(max(times) / mean)
        return float(sum(ratios) / len(ratios)) if ratios else 1.0

    def to_dict(self) -> dict:
        """JSON-serializable trace of the whole run (per-iteration)."""
        return {
            "schema_version": 2,
            "primitive": self.primitive,
            "dataset": self.dataset,
            "num_gpus": self.num_gpus,
            "scale": self.scale,
            "elapsed_seconds": self.elapsed,
            "supersteps": self.supersteps,
            "total_edges_visited": self.total_edges_visited,
            "total_items_sent": self.total_items_sent,
            "total_comm_compute": self.total_comm_compute,
            "num_reallocs": self.num_reallocs,
            "peak_memory": {str(k): v for k, v in self.peak_memory.items()},
            "load_imbalance": self.load_imbalance(),
            "recovery": {
                "comm_retries": self.comm_retries,
                "retry_seconds": self.retry_seconds,
                "oom_recoveries": self.oom_recoveries,
                "checkpoints_taken": self.checkpoints_taken,
                "checkpoint_bytes": self.checkpoint_bytes,
                "checkpoint_seconds": self.checkpoint_seconds,
                "rollbacks": self.rollbacks,
                "restore_seconds": self.restore_seconds,
                "degraded_gpus": list(self.degraded_gpus),
                "worker_respawns": self.worker_respawns,
                "supersteps_replayed": self.supersteps_replayed,
                "hang_detections": self.hang_detections,
                "supervision_overhead_seconds":
                    self.supervision_overhead_seconds,
            },
            "iterations": [
                {
                    "iteration": r.iteration,
                    "duration": r.duration,
                    "frontier_size": r.frontier_size,
                    "direction": r.direction,
                    "edges_visited": {
                        str(k): v for k, v in r.edges_visited.items()
                    },
                    "items_sent": {
                        str(k): v for k, v in r.items_sent.items()
                    },
                    "bytes_sent": {
                        str(k): v for k, v in r.bytes_sent.items()
                    },
                    "comm_compute_items": {
                        str(k): v for k, v in r.comm_compute_items.items()
                    },
                    "vertices_processed": {
                        str(k): v for k, v in r.vertices_processed.items()
                    },
                    "compute_time": {
                        str(k): v for k, v in r.compute_time.items()
                    },
                    "comm_time": {
                        str(k): v for k, v in r.comm_time.items()
                    },
                }
                for r in self.iterations
            ],
        }

    def save_json(self, path) -> None:
        """Write the run trace to a JSON file."""
        import json

        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1)
