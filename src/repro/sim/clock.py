"""Virtual time.

All performance numbers produced by this library are *virtual*: time only
advances when the cost model charges it.  This keeps every experiment
deterministic and lets us model the paper's hardware (K40/K80/P100 nodes)
on any host.
"""

from __future__ import annotations

from ..errors import SimulationError

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotone virtual clock measured in seconds."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to absolute time ``t`` (never backward)."""
        if t < self._now - 1e-18:
            raise SimulationError(
                f"clock cannot move backward: now={self._now}, target={t}"
            )
        self._now = max(self._now, t)

    def advance_by(self, dt: float) -> None:
        """Move the clock forward by ``dt`` seconds."""
        if dt < 0:
            raise SimulationError(f"negative time delta: {dt}")
        self._now += dt

    def reset(self) -> None:
        self._now = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(now={self._now * 1e3:.3f} ms)"
