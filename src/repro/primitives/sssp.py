"""Single-source shortest path.

Frontier-based Bellman-Ford relaxation (Gunrock's SSSP): each iteration
advances from the frontier relaxing tentative distances; vertices whose
distance improved form the next frontier.  A vertex can re-enter the
frontier, which is Table I's factor ``b``: W = O(b|Ei|), H = O(2b|Bi|)
(vertex + distance value per item), S ~ b*D/2.

* Vertex duplication: **duplicate-1-hop** — SSSP only ever touches the
  immediate neighbors of outgoing edges, the case Section III-C says
  duplicate-1-hop + selective-communication is made for (it also
  exercises the ID-conversion machinery).
* Communication: **selective**; value associate = the tentative distance,
  optional vertex associate = the predecessor (global ID).
* Combination: ``atomicMin`` on distances; improved vertices join the
  next frontier.
* Convergence: all frontiers empty.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core import combine
from ..core.comm import SELECTIVE, Message
from ..core.iteration import GpuContext, IterationBase
from ..core.operators.advance import advance_push
from ..core.problem import DataSlice, ProblemBase
from ..core.stats import OpStats
from ..errors import GraphFormatError
from ..partition.duplication import DUPLICATE_1HOP, SubGraph

__all__ = ["SSSPProblem", "SSSPIteration", "run_sssp"]


class SSSPProblem(ProblemBase):
    """Per-GPU SSSP state: tentative distances (+ optional preds)."""

    name = "sssp"
    duplication = DUPLICATE_1HOP
    communication = SELECTIVE
    NUM_VALUE_ASSOCIATES = 1  # the distance travels with each vertex
    # distances atomicMin-combine; any improving predecessor is a witness
    combiners = {"dist": combine.MIN, "preds": combine.WITNESS}

    def __init__(self, *args, mark_predecessors: bool = False, **kwargs):
        self.mark_predecessors = mark_predecessors
        self.NUM_VERTEX_ASSOCIATES = 1 if mark_predecessors else 0
        super().__init__(*args, **kwargs)
        if self.graph.values is None:
            raise GraphFormatError(
                "SSSP needs edge values; use add_random_weights()"
            )

    def init_data_slice(self, ds: DataSlice, sub: SubGraph) -> None:
        ids = sub.csr.ids
        ds.allocate("dist", sub.num_vertices, ids.value_dtype, fill=np.inf)
        if self.mark_predecessors:
            ds.allocate("preds", sub.num_vertices, ids.vertex_dtype, fill=-1)

    def reset(self, src: int = 0) -> List[np.ndarray]:
        for ds in self.data_slices:
            ds["dist"].fill(np.inf)
            if self.mark_predecessors:
                ds["preds"].fill(-1)
        src_gpu, local_src = self.locate(src)
        self.data_slices[src_gpu]["dist"][local_src] = 0.0
        frontiers = [np.empty(0, dtype=np.int64) for _ in range(self.num_gpus)]
        frontiers[src_gpu] = np.array([local_src], dtype=np.int64)
        return frontiers

    def distances(self) -> np.ndarray:
        """Global distance array (inf = unreached)."""
        return self.extract("dist")

    def predecessors(self):
        if not self.mark_predecessors:
            return None
        return self.extract("preds")


class SSSPIteration(IterationBase):
    """Relaxation core and min-distance combiner."""

    def full_queue_core(
        self, ctx: GpuContext, frontier: np.ndarray
    ) -> Tuple[np.ndarray, List[OpStats]]:
        problem: SSSPProblem = self.problem  # type: ignore[assignment]
        dist = ctx.slice["dist"]
        csr = ctx.sub.csr
        if frontier.size == 0:
            return np.empty(0, dtype=np.int64), []
        # a vertex may appear several times (local rediscovery + remote
        # updates); relax each copy — the GPU kernel does the same
        nbrs, srcs, eidx, a_stats = advance_push(
            csr, frontier, ids_bytes=ctx.ids_bytes, ws=ctx.workspace,
            tracer=ctx.tracer,
        )
        if nbrs.size == 0:
            return np.empty(0, dtype=np.int64), [a_stats]
        cand = dist[srcs] + csr.values[eidx]
        # deterministic atomicMin: per-neighbor minimum candidate
        old = dist[nbrs].copy()
        np.minimum.at(dist, nbrs, cand)
        improved_mask = dist[nbrs] < old
        improved = np.unique(nbrs[improved_mask])
        relax_stats = OpStats(
            name="relax",
            input_size=int(nbrs.size),
            output_size=int(improved.size),
            vertices_processed=int(frontier.size),
            launches=1,
            streaming_bytes=(nbrs.size + improved.size) * ctx.ids_bytes,
            random_bytes=nbrs.size * (8 + 8),  # dist read + weight read
            atomic_ops=float(nbrs.size),
        )
        if problem.mark_predecessors and improved.size:
            # winner edge per improved vertex: the candidate equal to the
            # final distance with the smallest edge index.  Each improved
            # vertex's final distance IS its minimum candidate, so every
            # segment of the (nbr, eidx)-sorted relaxations contains at
            # least one hit and the first hit at/after the segment start
            # lies inside the segment — one searchsorted finds them all.
            order = np.lexsort((eidx, nbrs))
            s_nbrs, s_cand, s_srcs = nbrs[order], cand[order], srcs[order]
            pos = np.searchsorted(s_nbrs, improved, side="left")
            preds = ctx.slice["preds"]
            l2g = ctx.sub.local_to_global
            hits = np.flatnonzero(s_cand <= dist[s_nbrs] + 1e-12)
            winners = hits[np.searchsorted(hits, pos)]
            preds[improved] = l2g[s_srcs[winners]]
        return improved, [a_stats, relax_stats]

    def expand_incoming(
        self, ctx: GpuContext, msg: Message
    ) -> Tuple[np.ndarray, List[OpStats]]:
        problem: SSSPProblem = self.problem  # type: ignore[assignment]
        dist = ctx.slice["dist"]
        verts = np.asarray(msg.vertices, dtype=np.int64)
        incoming = np.asarray(msg.value_associates[0], dtype=np.float64)
        improved_mask = incoming < dist[verts]
        fresh = verts[improved_mask]
        dist[fresh] = incoming[improved_mask]
        if problem.mark_predecessors and msg.vertex_associates:
            ctx.slice["preds"][fresh] = msg.vertex_associates[0][improved_mask]
        stats = OpStats(
            name="expand_incoming",
            input_size=int(verts.size),
            output_size=int(fresh.size),
            vertices_processed=int(verts.size),
            launches=1,
            streaming_bytes=verts.size * (ctx.ids_bytes + 8),
            random_bytes=verts.size * 16,
        )
        return fresh, [stats]

    def value_associate_arrays(self, ctx: GpuContext):
        return [ctx.slice["dist"]]

    def vertex_associate_arrays(self, ctx: GpuContext):
        problem: SSSPProblem = self.problem  # type: ignore[assignment]
        if problem.mark_predecessors:
            return [ctx.slice["preds"]]
        return []


def run_sssp(graph, machine, src: int = 0, partitioner=None, scheme=None,
             **enactor_kwargs):
    """Convenience one-shot SSSP: returns (distances, metrics, problem)."""
    from ..core.enactor import Enactor

    problem = SSSPProblem(graph, machine, partitioner=partitioner)
    enactor = Enactor(problem, SSSPIteration, scheme=scheme, **enactor_kwargs)
    metrics = enactor.enact(src=src)
    return problem.distances(), metrics, problem
