"""Connected components (Soman et al.'s hooking + pointer jumping).

CC is the paper's example of a primitive that "jumps beyond the n-hop
limit" (Section II-A, re Medusa) — pointer jumping reads component IDs of
arbitrarily distant vertices — which is why it needs **duplicate-all**
plus **broadcast** (Section III-C).

Per superstep each GPU runs the single-GPU algorithm to a local fixpoint
(edge hooking onto the minimum component ID, then full pointer jumping),
then broadcasts the vertices whose component changed together with the
new IDs; receivers min-combine.  Globally this converges to per-component
minimum vertex IDs in very few supersteps — Table I's "2-5 iterations"
with per-superstep W = log(D/2) * O(|Ei|), H = S * O(2|Vi|).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..core import combine
from ..core.comm import BROADCAST, Message
from ..core.iteration import GpuContext, IterationBase
from ..core.problem import DataSlice, ProblemBase
from ..core.stats import OpStats
from ..partition.duplication import DUPLICATE_ALL, SubGraph

__all__ = ["CCProblem", "CCIteration", "run_cc"]


class CCProblem(ProblemBase):
    """Per-GPU CC state: the mirrored component-ID array."""

    name = "cc"
    duplication = DUPLICATE_ALL
    communication = BROADCAST
    NUM_VERTEX_ASSOCIATES = 1  # the component ID travels with each vertex
    uses_intermediate = False  # hooking/jumping update comp[] in place
    # component IDs converge to the per-component minimum vertex ID
    combiners = {"comp": combine.MIN}

    def init_data_slice(self, ds: DataSlice, sub: SubGraph) -> None:
        ds.allocate("comp", sub.num_vertices, sub.csr.ids.vertex_dtype)
        # flattened edge sources for vectorized hooking, stored at vertex-ID
        # width; edge destinations need no extra storage — the CSR's
        # col_indices array IS the destination list
        src = np.repeat(
            np.arange(sub.num_vertices, dtype=np.int64),
            np.diff(sub.csr.row_offsets).astype(np.int64),
        )
        ds.allocate("edge_src", src.size, sub.csr.ids.vertex_dtype)
        ds["edge_src"][:] = src

    def reset(self) -> List[np.ndarray]:
        for ds in self.data_slices:
            comp = ds["comp"]
            comp[:] = np.arange(comp.size)
        # every GPU starts active: the whole vertex set is the frontier
        return [
            np.arange(sub.num_vertices, dtype=np.int64)
            for sub in self.subgraphs
        ]

    def components(self) -> np.ndarray:
        """Global component IDs (min vertex ID per component)."""
        return self.extract("comp")


class CCIteration(IterationBase):
    """Local hook+jump fixpoint, broadcast of changed component IDs."""

    # the cached views point into pre-rollback edge_src allocations,
    # which a repartition replaces wholesale
    SNAPSHOT_EXCLUDE = IterationBase.SNAPSHOT_EXCLUDE | {"_src64"}

    def __init__(self, problem):
        super().__init__(problem)
        # edge_src never changes after init; cache its int64 view per GPU
        # instead of an O(|Ei|) astype every superstep
        self._src64: dict = {}

    def on_restore(self) -> None:
        self._src64 = {}

    def full_queue_core(
        self, ctx: GpuContext, frontier: np.ndarray
    ) -> Tuple[np.ndarray, List[OpStats]]:
        ds = ctx.slice
        comp = ds["comp"]
        src = self._src64.get(ctx.gpu.device_id)
        if src is None:
            src = ds["edge_src"]
            if src.dtype != np.int64:
                src = src.astype(np.int64)
            self._src64[ctx.gpu.device_id] = src
        dst = ctx.sub.csr.cols64
        stats: List[OpStats] = []
        if frontier.size == 0:
            # nothing changed locally or remotely: already at fixpoint
            return np.empty(0, dtype=np.int64), stats

        before = comp.copy()
        passes = 0
        while True:
            passes += 1
            snapshot = comp.copy()
            # hooking: each edge pulls its endpoint onto the smaller ID
            if src.size:
                np.minimum.at(comp, dst, comp[src])
                np.minimum.at(comp, src, comp[dst])
            # pointer jumping to full compression
            jumps = 0
            while True:
                jumped = comp[comp]
                jumps += 1
                if np.array_equal(jumped, comp):
                    break
                comp[:] = jumped
            stats.append(
                OpStats(
                    name="hook+jump",
                    input_size=int(src.size),
                    edges_visited=int(src.size),
                    vertices_processed=int(comp.size),
                    launches=1 + jumps,
                    streaming_bytes=comp.size * 8 * (1 + jumps),
                    random_bytes=2 * src.size * 8,
                    atomic_ops=float(src.size),
                )
            )
            if np.array_equal(comp, snapshot):
                break
        changed = np.flatnonzero(comp != before)
        return changed, stats

    def expand_incoming(
        self, ctx: GpuContext, msg: Message
    ) -> Tuple[np.ndarray, List[OpStats]]:
        comp = ctx.slice["comp"]
        verts = np.asarray(msg.vertices, dtype=np.int64)
        incoming = np.asarray(msg.vertex_associates[0], dtype=np.int64)
        improved = incoming < comp[verts]
        fresh = verts[improved]
        comp[fresh] = incoming[improved]
        stats = OpStats(
            name="expand_incoming",
            input_size=int(verts.size),
            output_size=int(fresh.size),
            vertices_processed=int(verts.size),
            launches=1,
            streaming_bytes=verts.size * 2 * 8,
            random_bytes=verts.size * 16,
        )
        return fresh, [stats]

    def vertex_associate_arrays(self, ctx: GpuContext) -> Sequence[np.ndarray]:
        return [ctx.slice["comp"]]


def run_cc(graph, machine, partitioner=None, scheme=None, **enactor_kwargs):
    """Convenience one-shot CC: returns (components, metrics, problem)."""
    from ..core.enactor import Enactor
    from ..sim.memory import FixedPrealloc

    problem = CCProblem(graph, machine, partitioner=partitioner)
    # the paper uses fixed preallocation for CC (memory needs are known)
    enactor = Enactor(
        problem,
        CCIteration,
        scheme=scheme or FixedPrealloc(frontier_factor=1.05),
        **enactor_kwargs,
    )
    metrics = enactor.enact()
    return problem.components(), metrics, problem
