"""The paper's six graph primitives in the mGPU framework abstraction.

Each primitive is a (Problem, Iteration) pair plus a ``run_*`` one-shot
helper.  Table I summary:

============  ==========  =============  ====================  ==========
primitive     W           comm. C        comm. volume H        iterations
============  ==========  =============  ====================  ==========
BFS           O(|Ei|)     O(|Vi|)        O(|Bi|)               ~D/2
DOBFS         O(a|Ei|)    O(|V|)         O((n-1)|V|)           ~D/2
SSSP          O(b|Ei|)    O(b|Vi|)       O(2b|Bi|)             ~bD/2
BC            O(2|Ei|)    O(2|Vi|+|V|)   O(5|Bi|+2(n-1)|Li|)   ~D/2
CC            log(D/2)W   S*O(|Vi|)      S*O(2|Vi|)            2-5
PR            S*O(|Ei|)   S*O(|Bi|)      S*O(|Bi|)             data-dep.
============  ==========  =============  ====================  ==========
"""

from .bc import BCIteration, BCProblem, run_bc
from .bfs import BFSIteration, BFSProblem, run_bfs
from .cc import CCIteration, CCProblem, run_cc
from .dobfs import DOBFSIteration, DOBFSProblem, run_dobfs
from .pr import PRIteration, PRProblem, run_pagerank
from .sssp import SSSPIteration, SSSPProblem, run_sssp

__all__ = [
    "BFSProblem",
    "BFSIteration",
    "run_bfs",
    "DOBFSProblem",
    "DOBFSIteration",
    "run_dobfs",
    "SSSPProblem",
    "SSSPIteration",
    "run_sssp",
    "CCProblem",
    "CCIteration",
    "run_cc",
    "BCProblem",
    "BCIteration",
    "run_bc",
    "PRProblem",
    "PRIteration",
    "run_pagerank",
]

#: names -> runner, for sweep drivers
RUNNERS = {
    "bfs": run_bfs,
    "dobfs": run_dobfs,
    "sssp": run_sssp,
    "cc": run_cc,
    "bc": run_bc,
    "pr": run_pagerank,
}
