"""Direction-optimizing BFS (paper Algorithm 2 + Section VI-A).

* Vertex duplication: **duplicate-all** — "couples better with the
  broadcast communication strategy".
* Communication: **broadcast** — "because an upcoming iteration may use
  either the forward or backward direction"; H = O((n-1)|V|),
  C = O((n-1)|V|) — which is why DOBFS is communication-bound and scales
  flat (Section VII-B).
* Computation: push advance+filter in the forward direction; in the
  backward direction the per-*vertex* pull advance with edge skipping
  (Section VI-A), W = O(a|Ei|) with a < 1, dropping to O(|Li|) for
  high-degree graphs.
* Direction rule: FV/BV estimates with the do_a/do_b thresholds; the
  forward->backward switch (which must scan all vertices for unvisited
  ones — charged!) is allowed only once.
* Combination and convergence: same as BFS.

Because every GPU mirrors frontier and label state through broadcast, all
GPUs compute identical direction decisions without coordination.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core import combine
from ..core.comm import BROADCAST, Message
from ..core.direction import BACKWARD, FORWARD, DirectionState
from ..core.iteration import GpuContext, IterationBase
from ..core.operators.advance import advance_pull, advance_push
from ..core.operators.filter import filter_unvisited
from ..core.operators.fused import first_witness, fused_advance_filter
from ..core.problem import DataSlice, ProblemBase
from ..core.stats import OpStats
from ..partition.duplication import DUPLICATE_ALL, SubGraph
from .bfs import INVALID_LABEL

__all__ = ["DOBFSProblem", "DOBFSIteration", "run_dobfs"]


class DOBFSProblem(ProblemBase):
    """Per-GPU DOBFS state: labels, frontier bitmap, direction machine."""

    name = "dobfs"
    duplication = DUPLICATE_ALL
    communication = BROADCAST
    # every GPU mirrors labels/frontier state through broadcast: label
    # discoveries min-combine, bitmap membership OR-combines
    combiners = {
        "labels": combine.MIN,
        "in_frontier": combine.ANY,
        "preds": combine.WITNESS,
    }
    # the per-GPU direction machines mutate every iteration and decide
    # coverage; a rollback must rewind them with the rest of the state
    CHECKPOINT_ATTRS = ("directions",)
    # _decide_direction mutates this GPU's DirectionState inside the
    # superstep, so forked workers must ship it back
    PER_GPU_MUTABLE_ATTRS = ("directions",)

    def __init__(self, *args, do_a: float = 0.01, do_b: float = 0.1,
                 mark_predecessors: bool = False, **kwargs):
        self.do_a = do_a
        self.do_b = do_b
        self.mark_predecessors = mark_predecessors
        self.NUM_VERTEX_ASSOCIATES = 1 if mark_predecessors else 0
        super().__init__(*args, **kwargs)

    def init_data_slice(self, ds: DataSlice, sub: SubGraph) -> None:
        ids = sub.csr.ids
        ds.allocate("labels", sub.num_vertices, ids.vertex_dtype,
                    fill=INVALID_LABEL)
        # frontier membership bitmap for the pull direction
        ds.allocate("in_frontier", sub.num_vertices, bool, fill=False)
        if self.mark_predecessors:
            ds.allocate("preds", sub.num_vertices, ids.vertex_dtype, fill=-1)

    def reset(self, src: int = 0) -> List[np.ndarray]:
        # Every GPU must reach the SAME direction decision each iteration:
        # a forward GPU covers discoveries through its hosted vertices'
        # out-edges while a backward GPU covers its hosted unvisited
        # vertices, so a mixed-direction iteration leaves coverage gaps
        # (a vertex whose frontier neighbors live on forward-refusing
        # GPUs is never found).  All decision inputs are therefore
        # global quantities mirrored by broadcast — including |E| and
        # |V| here, NOT the per-GPU |Ei|.
        self.directions = [
            DirectionState(
                num_vertices=self.graph.num_vertices,
                num_edges=self.graph.num_edges,
                do_a=self.do_a,
                do_b=self.do_b,
            )
            for _ in self.subgraphs
        ]
        for ds in self.data_slices:
            ds["labels"].fill(INVALID_LABEL)
            ds["in_frontier"].fill(False)
            if self.mark_predecessors:
                ds["preds"].fill(-1)
        src_gpu, local_src = self.locate(src)
        # broadcast semantics: every GPU mirrors the source's visited state
        for ds in self.data_slices:
            ds["labels"][src] = 0
        frontiers = [np.empty(0, dtype=np.int64) for _ in range(self.num_gpus)]
        frontiers[src_gpu] = np.array([local_src], dtype=np.int64)
        return frontiers

    def labels(self) -> np.ndarray:
        return self.extract("labels")


class DOBFSIteration(IterationBase):
    """Dual-direction core with the FV/BV switching rule."""

    # the bitmap-bit record is a cache over slice arrays the enactor
    # restores separately; on_restore re-derives it from scratch
    SNAPSHOT_EXCLUDE = IterationBase.SNAPSHOT_EXCLUDE | {"_prev_in_frontier"}

    def __init__(self, problem):
        super().__init__(problem)
        # per-GPU record of which bitmap bits the last backward pass set,
        # so the next pass clears only those instead of an O(|Vi|) fill;
        # always a superset of the set bits (problem.reset only clears),
        # so a stale record after reset() is harmless
        self._prev_in_frontier: dict = {}

    def on_restore(self) -> None:
        # forces the next backward pass to rebuild the bitmap with a full
        # fill instead of trusting pre-rollback bookkeeping
        self._prev_in_frontier = {}

    def _decide_direction(
        self, ctx: GpuContext, frontier_size: int
    ) -> Tuple[str, List[OpStats]]:
        problem: DOBFSProblem = self.problem  # type: ignore[assignment]
        state = problem.directions[ctx.gpu.device_id]
        if ctx.iteration == 0:
            return state.direction, []  # always start forward
        labels = ctx.slice["labels"]
        visited = int((labels != INVALID_LABEL).sum())
        unvisited = labels.size - visited
        before = state.direction
        after = state.update(frontier_size, unvisited, visited)
        stats: List[OpStats] = []
        if before == FORWARD and after == BACKWARD:
            # the switch scans all vertices for unvisited ones
            stats.append(
                OpStats(
                    name="scan-unvisited",
                    input_size=labels.size,
                    vertices_processed=labels.size,
                    launches=1,
                    streaming_bytes=labels.size * 8,
                )
            )
        return after, stats

    def full_queue_core(
        self, ctx: GpuContext, frontier: np.ndarray
    ) -> Tuple[np.ndarray, List[OpStats]]:
        problem: DOBFSProblem = self.problem  # type: ignore[assignment]
        labels = ctx.slice["labels"]
        bitmap = ctx.slice["in_frontier"]
        csr = ctx.sub.csr
        label_val = ctx.iteration + 1
        direction, stats_list = self._decide_direction(ctx, int(frontier.size))

        if direction == FORWARD:
            if frontier.size == 0:
                return np.empty(0, dtype=np.int64), stats_list
            # forward: only advance from *hosted* frontier vertices; the
            # mirrored remote copies have zero local out-edges anyway, so
            # restricting the frontier is a cheap workload filter.
            hosted = frontier[ctx.sub.is_hosted(frontier)]
            if ctx.fused:
                survivors, w_src, _w, stats = fused_advance_filter(
                    csr, hosted, labels, INVALID_LABEL,
                    ids_bytes=ctx.ids_bytes, ws=ctx.workspace,
                    tracer=ctx.tracer,
                )
                stats_list.append(stats)
            else:
                nbrs, srcs, eidx, a_stats = advance_push(
                    csr, hosted, ids_bytes=ctx.ids_bytes, ws=ctx.workspace,
                    tracer=ctx.tracer,
                )
                survivors, f_stats = filter_unvisited(
                    nbrs, labels, INVALID_LABEL, ids_bytes=ctx.ids_bytes,
                    tracer=ctx.tracer,
                )
                w_src, _w = first_witness(nbrs, srcs, eidx, survivors)
                stats_list.extend([a_stats, f_stats])
        else:
            # backward (pull): unvisited *hosted* vertices look for a
            # parent in the previous frontier (mirrored in the bitmap).
            # The bitmap persists across iterations; clear only the bits
            # the previous backward pass set rather than re-filling |Vi|.
            prev = self._prev_in_frontier.get(ctx.gpu.device_id)
            if prev is None:
                bitmap.fill(False)
            elif prev.size:
                bitmap[prev] = False
            if frontier.size:
                bitmap[frontier] = True
            self._prev_in_frontier[ctx.gpu.device_id] = frontier.copy()
            hosted_all = np.flatnonzero(
                ctx.sub.host_of_local == ctx.gpu.device_id
            )
            candidates = hosted_all[labels[hosted_all] == INVALID_LABEL]
            # every backward iteration rebuilds the unvisited candidate
            # list (a label scan) and the frontier bitmap — an O(|Vi|)
            # streaming pass that is part of the pull's real cost
            stats_list.append(
                OpStats(
                    name="unvisited-list+bitmap",
                    input_size=labels.size,
                    vertices_processed=labels.size,
                    launches=2,
                    streaming_bytes=labels.size * 9 + frontier.size * 8,
                )
            )
            survivors, parents, stats = advance_pull(
                csr, candidates, bitmap, ids_bytes=ctx.ids_bytes,
                ws=ctx.workspace, tracer=ctx.tracer,
            )
            w_src = parents
            stats_list.append(stats)

        labels[survivors] = label_val
        if problem.mark_predecessors and survivors.size:
            ctx.slice["preds"][survivors] = ctx.sub.local_to_global[w_src]
        # output = newly discovered vertices: "a direction-independent view
        # ... and a cost-free transformation from backward to forward"
        return survivors, stats_list

    def expand_incoming(
        self, ctx: GpuContext, msg: Message
    ) -> Tuple[np.ndarray, List[OpStats]]:
        problem: DOBFSProblem = self.problem  # type: ignore[assignment]
        labels = ctx.slice["labels"]
        verts = np.asarray(msg.vertices, dtype=np.int64)
        label_val = ctx.iteration
        fresh_mask = labels[verts] == INVALID_LABEL
        fresh = verts[fresh_mask]
        labels[fresh] = label_val
        if problem.mark_predecessors and msg.vertex_associates:
            ctx.slice["preds"][fresh] = msg.vertex_associates[0][fresh_mask]
        stats = OpStats(
            name="expand_incoming",
            input_size=int(verts.size),
            output_size=int(fresh.size),
            vertices_processed=int(verts.size),
            launches=1,
            streaming_bytes=verts.size * ctx.ids_bytes,
            random_bytes=verts.size * 16,
        )
        return fresh, [stats]

    def vertex_associate_arrays(self, ctx: GpuContext):
        problem: DOBFSProblem = self.problem  # type: ignore[assignment]
        if problem.mark_predecessors:
            return [ctx.slice["preds"]]
        return []

    def direction_of(self, gpu: int) -> str:
        problem: DOBFSProblem = self.problem  # type: ignore[assignment]
        states = getattr(problem, "directions", None)
        return states[gpu].direction if states else ""


def run_dobfs(
    graph,
    machine,
    src: int = 0,
    partitioner=None,
    scheme=None,
    do_a: float = 0.01,
    do_b: float = 0.1,
    **enactor_kwargs,
):
    """Convenience one-shot DOBFS: returns (labels, metrics, problem).

    Communication/computation overlap is on by default — Gunrock
    separates the broadcast onto its own streams (Section III-B), which
    matters most for this communication-bound primitive.
    """
    from ..core.enactor import Enactor

    problem = DOBFSProblem(
        graph, machine, partitioner=partitioner, do_a=do_a, do_b=do_b
    )
    enactor_kwargs.setdefault("overlap_communication", True)
    enactor = Enactor(problem, DOBFSIteration, scheme=scheme, **enactor_kwargs)
    metrics = enactor.enact(src=src)
    return problem.labels(), metrics, problem
