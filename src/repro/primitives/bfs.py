"""Breadth-first search (paper Algorithm 1 / Appendix A).

* Vertex duplication: **duplicate-all** — "we trade memory usage for
  better performance for BFS".
* Computation: advance followed by filter (fused when the allocation
  scheme fuses, Section VI-C); W = O(|Ei|).
* Communication: **selective** — only remote vertices are sent;
  H = O(|Bi|), C = O(|Vi|).
* Combination: a received vertex that has not been visited gets its label
  (and predecessor) set and joins the next input frontier.
* Convergence: all frontiers empty; S ~ D/2 per GPU... the paper's D/2
  rule of thumb reflects random sources on undirected graphs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core import combine
from ..core.comm import SELECTIVE, Message
from ..core.iteration import GpuContext, IterationBase
from ..core.operators.advance import advance_push
from ..core.operators.filter import filter_unvisited
from ..core.operators.fused import first_witness, fused_advance_filter
from ..core.problem import DataSlice, ProblemBase
from ..core.stats import OpStats
from ..partition.duplication import DUPLICATE_ALL, SubGraph

__all__ = ["BFSProblem", "BFSIteration", "INVALID_LABEL"]

INVALID_LABEL = -1


class BFSProblem(ProblemBase):
    """Per-GPU BFS state: labels (and optional predecessors)."""

    name = "bfs"
    duplication = DUPLICATE_ALL
    communication = SELECTIVE
    # labels min-combine (first discovery wins at the superstep boundary);
    # any concurrently-written predecessor is a valid witness
    combiners = {"labels": combine.MIN, "preds": combine.WITNESS}

    def __init__(self, *args, mark_predecessors: bool = False, **kwargs):
        self.mark_predecessors = mark_predecessors
        # "MAX_NUM_VERTEX_ASSOCIATES = (MARK_PREDECESSORS) ? 1 : 0"
        self.NUM_VERTEX_ASSOCIATES = 1 if mark_predecessors else 0
        self.NUM_VALUE_ASSOCIATES = 0
        super().__init__(*args, **kwargs)

    def init_data_slice(self, ds: DataSlice, sub: SubGraph) -> None:
        ids = sub.csr.ids
        ds.allocate("labels", sub.num_vertices, ids.vertex_dtype,
                    fill=INVALID_LABEL)
        if self.mark_predecessors:
            # predecessors are stored and communicated as *global* IDs
            ds.allocate("preds", sub.num_vertices, ids.vertex_dtype, fill=-1)

    def reset(self, src: int = 0) -> List[np.ndarray]:
        for ds in self.data_slices:
            ds["labels"].fill(INVALID_LABEL)
            if self.mark_predecessors:
                ds["preds"].fill(-1)
        src_gpu, local_src = self.locate(src)
        self.data_slices[src_gpu]["labels"][local_src] = 0
        frontiers: List[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in range(self.num_gpus)
        ]
        frontiers[src_gpu] = np.array([local_src], dtype=np.int64)
        return frontiers

    # -- results -------------------------------------------------------------
    def labels(self) -> np.ndarray:
        """Global BFS level array (-1 = unreached)."""
        return self.extract("labels")

    def predecessors(self) -> Optional[np.ndarray]:
        if not self.mark_predecessors:
            return None
        return self.extract("preds")


class BFSIteration(IterationBase):
    """Advance+filter core and min-label combiner."""

    def full_queue_core(
        self, ctx: GpuContext, frontier: np.ndarray
    ) -> Tuple[np.ndarray, List[OpStats]]:
        problem: BFSProblem = self.problem  # type: ignore[assignment]
        labels = ctx.slice["labels"]
        label_val = ctx.iteration + 1
        csr = ctx.sub.csr
        if frontier.size == 0:
            return np.empty(0, dtype=np.int64), []
        if ctx.fused:
            survivors, w_src, _w_edge, stats = fused_advance_filter(
                csr, frontier, labels, INVALID_LABEL,
                ids_bytes=ctx.ids_bytes, ws=ctx.workspace, tracer=ctx.tracer,
            )
            stats_list = [stats]
        else:
            nbrs, srcs, eidx, a_stats = advance_push(
                csr, frontier, ids_bytes=ctx.ids_bytes, ws=ctx.workspace,
                tracer=ctx.tracer,
            )
            survivors, f_stats = filter_unvisited(
                nbrs, labels, INVALID_LABEL, ids_bytes=ctx.ids_bytes,
                tracer=ctx.tracer,
            )
            w_src, _w_edge = first_witness(nbrs, srcs, eidx, survivors)
            stats_list = [a_stats, f_stats]
        labels[survivors] = label_val
        if problem.mark_predecessors and survivors.size:
            ctx.slice["preds"][survivors] = ctx.sub.local_to_global[w_src]
        return survivors, stats_list

    def expand_incoming(
        self, ctx: GpuContext, msg: Message
    ) -> Tuple[np.ndarray, List[OpStats]]:
        problem: BFSProblem = self.problem  # type: ignore[assignment]
        labels = ctx.slice["labels"]
        verts = np.asarray(msg.vertices, dtype=np.int64)
        # received vertices were discovered with label = sender's
        # iteration + 1 == this GPU's current iteration
        label_val = ctx.iteration
        fresh_mask = labels[verts] == INVALID_LABEL
        fresh = verts[fresh_mask]
        labels[fresh] = label_val
        if problem.mark_predecessors and msg.vertex_associates:
            ctx.slice["preds"][fresh] = msg.vertex_associates[0][fresh_mask]
        stats = OpStats(
            name="expand_incoming",
            input_size=int(verts.size),
            output_size=int(fresh.size),
            vertices_processed=int(verts.size),
            launches=1,
            streaming_bytes=verts.size
            * ctx.ids_bytes
            * (1 + len(msg.vertex_associates)),
            # atomicMin per received vertex: near-distinct addresses run
            # at random-write bandwidth, not serialized-atomic rate
            random_bytes=verts.size * 16,
        )
        return fresh, [stats]

    def vertex_associate_arrays(self, ctx: GpuContext):
        problem: BFSProblem = self.problem  # type: ignore[assignment]
        if problem.mark_predecessors:
            return [ctx.slice["preds"]]
        return []


def run_bfs(
    graph,
    machine,
    src: int = 0,
    partitioner=None,
    scheme=None,
    mark_predecessors: bool = False,
    **enactor_kwargs,
):
    """Convenience one-shot BFS: returns (labels, metrics, problem)."""
    from ..core.enactor import Enactor

    problem = BFSProblem(
        graph, machine, partitioner=partitioner,
        mark_predecessors=mark_predecessors,
    )
    enactor = Enactor(problem, BFSIteration, scheme=scheme, **enactor_kwargs)
    metrics = enactor.enact(src=src)
    metrics.dataset = getattr(graph, "dataset_name", "")
    return problem.labels(), metrics, problem


def run_bfs_batch(
    graph,
    machine,
    sources,
    partitioner=None,
    scheme=None,
    **enactor_kwargs,
):
    """BFS from several sources, reusing one partitioned problem.

    This is exactly the main loop of the paper's Appendix A example::

        for (auto src : srcs) { problem.Reset(src); enactor.Enact(src); }

    Partitioning/distribution happen once; each traversal only resets the
    per-vertex state.  Returns ``(list of label arrays, list of metrics,
    problem)``.  Graph500-style evaluation (median rate over 64 random
    sources) is a one-liner on top of this.
    """
    from ..core.enactor import Enactor

    problem = BFSProblem(graph, machine, partitioner=partitioner)
    enactor = Enactor(problem, BFSIteration, scheme=scheme, **enactor_kwargs)
    all_labels = []
    all_metrics = []
    for src in sources:
        metrics = enactor.enact(src=int(src))
        all_labels.append(problem.labels())
        all_metrics.append(metrics)
    return all_labels, all_metrics, problem
