"""Betweenness centrality (Brandes, single-source dependency).

Three phases, matching how Gunrock's BC maps onto the framework and
producing exactly Table I's cost row (W = O(2|Ei|), H = O(5|Bi| +
2(n-1)|Li|), C = O(2|Vi| + |V|), S ~ D/2 per direction):

1. **forward** — BFS computing depth labels and shortest-path counts
   (sigma).  Selective communication: each discovered remote vertex is
   sent once with its locally-accumulated sigma contribution; the
   receiver min-combines the label and add-combines sigma (the 5|Bi|
   term: vertex + label + sigma and re-sends).
2. **sync** — one broadcast of every hosted vertex's final (depth, sigma)
   so all GPUs share the full arrays (the 2(n-1)|Li| term).
3. **backward** — dependency accumulation level by level, deepest first:
   each GPU computes delta for its hosted vertices of the current level
   (all their edges are local; sigma/depth are mirrored; deeper deltas
   arrived by broadcast the previous superstep) and broadcasts them.

BC uses duplicate-all so the mirrored arrays exist everywhere.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..core import combine
from ..core.comm import BROADCAST, SELECTIVE, Message
from ..core.iteration import GpuContext, IterationBase
from ..core.operators.advance import advance_push
from ..core.problem import DataSlice, ProblemBase
from ..core.stats import OpStats
from ..partition.duplication import DUPLICATE_ALL, SubGraph

__all__ = ["BCProblem", "BCIteration", "run_bc"]

_FORWARD, _SYNC, _SYNC_WAIT, _BACKWARD = (
    "forward",
    "sync",
    "sync-wait",
    "backward",
)


class BCProblem(ProblemBase):
    """Per-GPU BC state: depth labels, sigma, delta; phase machine."""

    name = "bc"
    duplication = DUPLICATE_ALL
    communication = SELECTIVE  # forward phase; flipped to broadcast later
    NUM_VERTEX_ASSOCIATES = 1  # depth label
    NUM_VALUE_ASSOCIATES = 1  # sigma (forward) / delta (backward)
    # depths min-combine like BFS labels; sigma/delta are atomicAdd
    # accumulations of path counts / dependencies
    combiners = {
        "labels": combine.MIN,
        "sigma": combine.SUM,
        "delta": combine.SUM,
    }
    # the phase machine is mutated by reset() AND should_stop(); a barrier
    # checkpoint must capture all of it or a rollback resumes mid-phase
    CHECKPOINT_ATTRS = ("phase", "max_depth", "level", "communication")

    def init_data_slice(self, ds: DataSlice, sub: SubGraph) -> None:
        ids = sub.csr.ids
        ds.allocate("labels", sub.num_vertices, ids.vertex_dtype, fill=-1)
        ds.allocate("sigma", sub.num_vertices, ids.value_dtype, fill=0.0)
        ds.allocate("delta", sub.num_vertices, ids.value_dtype, fill=0.0)

    def reset(self, src: int = 0) -> List[np.ndarray]:
        self.phase = _FORWARD
        self.max_depth = 0
        self.level = -1
        self.communication = SELECTIVE
        for ds in self.data_slices:
            ds["labels"].fill(-1)
            ds["sigma"].fill(0.0)
            ds["delta"].fill(0.0)
        src_gpu, local_src = self.locate(src)
        self.data_slices[src_gpu]["labels"][local_src] = 0
        self.data_slices[src_gpu]["sigma"][local_src] = 1.0
        frontiers = [np.empty(0, dtype=np.int64) for _ in range(self.num_gpus)]
        frontiers[src_gpu] = np.array([local_src], dtype=np.int64)
        return frontiers

    def bc_values(self, src: int = None) -> np.ndarray:
        """Per-vertex dependency of the traversed source (delta array)."""
        return self.extract("delta")

    def depths(self) -> np.ndarray:
        return self.extract("labels")

    def sigmas(self) -> np.ndarray:
        return self.extract("sigma")


class BCIteration(IterationBase):
    """Forward sigma-BFS, sync broadcast, backward delta accumulation."""

    # ------------------------------------------------------------------
    def _forward_core(self, ctx: GpuContext, frontier):
        problem: BCProblem = self.problem  # type: ignore[assignment]
        ds = ctx.slice
        labels, sigma = ds["labels"], ds["sigma"]
        csr = ctx.sub.csr
        if frontier.size == 0:
            return np.empty(0, dtype=np.int64), []
        label_val = ctx.iteration + 1
        nbrs, srcs, eidx, a_stats = advance_push(
            csr, frontier, ids_bytes=ctx.ids_bytes, ws=ctx.workspace,
            tracer=ctx.tracer,
        )
        if nbrs.size == 0:
            return np.empty(0, dtype=np.int64), [a_stats]
        unvisited = labels[nbrs] == -1
        survivors = np.unique(nbrs[unvisited])
        labels[survivors] = label_val
        # sigma accumulation along every shortest-path edge of this level
        on_level = labels[nbrs] == label_val
        np.add.at(sigma, nbrs[on_level], sigma[srcs[on_level]])
        s_stats = OpStats(
            name="sigma-accumulate",
            input_size=int(nbrs.size),
            output_size=int(survivors.size),
            vertices_processed=int(frontier.size),
            launches=1,
            streaming_bytes=nbrs.size * ctx.ids_bytes,
            random_bytes=nbrs.size * (8 + 8),
            atomic_ops=float(on_level.sum()),
        )
        return survivors, [a_stats, s_stats]

    def _sync_core(self, ctx: GpuContext):
        """Broadcast every hosted vertex's (depth, sigma)."""
        hosted = np.flatnonzero(ctx.sub.host_of_local == ctx.gpu.device_id)
        stats = OpStats(
            name="sync-package",
            input_size=int(hosted.size),
            output_size=int(hosted.size),
            vertices_processed=int(hosted.size),
            launches=1,
            streaming_bytes=hosted.size * (8 + 8 + ctx.ids_bytes),
        )
        return hosted, [stats]

    def _backward_core(self, ctx: GpuContext):
        problem: BCProblem = self.problem  # type: ignore[assignment]
        ds = ctx.slice
        labels, sigma, delta = ds["labels"], ds["sigma"], ds["delta"]
        level = problem.level
        hosted = np.flatnonzero(ctx.sub.host_of_local == ctx.gpu.device_id)
        cand = hosted[labels[hosted] == level]
        if cand.size == 0:
            return np.empty(0, dtype=np.int64), []
        nbrs, srcs, _eidx, a_stats = advance_push(
            ctx.sub.csr, cand, ids_bytes=ctx.ids_bytes, ws=ctx.workspace,
            tracer=ctx.tracer,
        )
        succ = labels[nbrs] == level + 1
        if np.any(succ):
            contrib = (
                sigma[srcs[succ]]
                / np.maximum(sigma[nbrs[succ]], 1e-300)
                * (1.0 + delta[nbrs[succ]])
            )
            np.add.at(delta, srcs[succ], contrib)
        d_stats = OpStats(
            name="delta-accumulate",
            input_size=int(nbrs.size),
            output_size=int(cand.size),
            vertices_processed=int(cand.size),
            launches=1,
            streaming_bytes=cand.size * ctx.ids_bytes,
            random_bytes=nbrs.size * (8 + 8 + 8),
            atomic_ops=float(succ.sum()),
        )
        return cand, [a_stats, d_stats]

    def full_queue_core(
        self, ctx: GpuContext, frontier: np.ndarray
    ) -> Tuple[np.ndarray, List[OpStats]]:
        problem: BCProblem = self.problem  # type: ignore[assignment]
        if problem.phase == _FORWARD:
            return self._forward_core(ctx, frontier)
        if problem.phase == _SYNC:
            return self._sync_core(ctx)
        if problem.phase == _SYNC_WAIT:
            # sync messages are being combined this superstep; no compute
            return np.empty(0, dtype=np.int64), []
        return self._backward_core(ctx)

    # ------------------------------------------------------------------
    def expand_incoming(
        self, ctx: GpuContext, msg: Message
    ) -> Tuple[np.ndarray, List[OpStats]]:
        problem: BCProblem = self.problem  # type: ignore[assignment]
        ds = ctx.slice
        verts = np.asarray(msg.vertices, dtype=np.int64)
        depths_in = np.asarray(msg.vertex_associates[0], dtype=np.int64)
        values_in = np.asarray(msg.value_associates[0], dtype=np.float64)
        labels = ds["labels"]
        stats = OpStats(
            name="expand_incoming",
            input_size=int(verts.size),
            vertices_processed=int(verts.size),
            launches=1,
            streaming_bytes=verts.size * (ctx.ids_bytes + 8 + 8),
            random_bytes=verts.size * 24,
        )
        if problem.phase == _FORWARD:
            sigma = ds["sigma"]
            level = ctx.iteration  # sender discovered at our current level
            fresh_mask = labels[verts] == -1
            fresh = verts[fresh_mask]
            labels[fresh] = level
            # add sigma contributions for every vertex whose (possibly just
            # set) label matches this level; stale discoveries are dropped
            valid = labels[verts] == level
            np.add.at(sigma, verts[valid], values_in[valid])
            stats.output_size = int(fresh.size)
            return fresh, [stats]
        if problem.phase in (_SYNC, _SYNC_WAIT):
            # overwrite with the host's authoritative depth/sigma
            labels[verts] = depths_in
            ds["sigma"][verts] = values_in
            return np.empty(0, dtype=np.int64), [stats]
        # backward: the host's delta for this level is authoritative
        ds["delta"][verts] = values_in
        return np.empty(0, dtype=np.int64), [stats]

    def vertex_associate_arrays(self, ctx: GpuContext) -> Sequence[np.ndarray]:
        return [ctx.slice["labels"]]

    def value_associate_arrays(self, ctx: GpuContext) -> Sequence[np.ndarray]:
        problem: BCProblem = self.problem  # type: ignore[assignment]
        if problem.phase == _BACKWARD:
            return [ctx.slice["delta"]]
        return [ctx.slice["sigma"]]

    # ------------------------------------------------------------------
    def should_stop(self, iteration, frontier_sizes, messages_in_flight) -> bool:
        problem: BCProblem = self.problem  # type: ignore[assignment]
        if problem.phase == _FORWARD:
            if sum(frontier_sizes) == 0 and messages_in_flight == 0:
                # forward done; depths are globally known only after the
                # sync broadcast has been *combined* (one superstep later)
                if problem.num_gpus == 1:
                    problem.phase = _BACKWARD
                    labels = problem.data_slices[0]["labels"]
                    problem.max_depth = int(labels.max())
                    problem.level = problem.max_depth - 1
                    if problem.level < 1:
                        return True
                else:
                    problem.phase = _SYNC
                    problem.communication = BROADCAST
            return False
        if problem.phase == _SYNC:
            # sync messages are in flight; combine them next superstep
            problem.phase = _SYNC_WAIT
            return False
        if problem.phase == _SYNC_WAIT:
            # every GPU now holds the full (labels, sigma) arrays
            problem.phase = _BACKWARD
            labels = problem.data_slices[0]["labels"]
            problem.max_depth = int(labels.max())
            problem.level = problem.max_depth - 1
            return problem.level < 1
        # backward: walk levels toward the source; level 0 is the source,
        # which Brandes excludes, so level 1 is the last one computed
        problem.level -= 1
        return problem.level < 1

    def max_iterations(self) -> int:
        return 4 * self.problem.graph.num_vertices + 16


def run_bc(graph, machine, src: int = 0, partitioner=None, scheme=None,
           **enactor_kwargs):
    """Convenience one-shot BC: returns (dependencies, metrics, problem)."""
    from ..core.enactor import Enactor

    problem = BCProblem(graph, machine, partitioner=partitioner)
    enactor = Enactor(problem, BCIteration, scheme=scheme, **enactor_kwargs)
    metrics = enactor.enact(src=src)
    return problem.bc_values(), metrics, problem


def run_full_bc(graph, machine, sources=None, partitioner=None, scheme=None,
                **enactor_kwargs):
    """Exact (or sampled) betweenness centrality over many sources.

    The paper's BC primitive computes one source's dependencies per
    traversal (McLaughlin & Bader's task-parallel alternative distributes
    *sources*; Gunrock distributes the *graph*).  This extension runs the
    multi-GPU primitive once per source, reusing the partitioned problem
    — the pattern the paper's Appendix A main loop (``for src in srcs``)
    shows — and accumulates the dependencies into full BC scores.

    Parameters
    ----------
    sources:
        Iterable of source vertices; ``None`` means every vertex (exact
        BC).  Pass a random sample for approximate BC on big graphs.

    Returns
    -------
    (bc_values, total_metrics, problem):
        ``bc_values`` are unnormalized Brandes scores summed over the
        given sources; ``total_metrics`` aggregates virtual time and BSP
        counters across all traversals.
    """
    import numpy as np

    from ..core.enactor import Enactor
    from ..sim.metrics import RunMetrics

    problem = BCProblem(graph, machine, partitioner=partitioner)
    enactor = Enactor(problem, BCIteration, scheme=scheme, **enactor_kwargs)
    if sources is None:
        sources = range(graph.num_vertices)
    total = RunMetrics(num_gpus=machine.num_gpus, primitive="bc-full")
    total.scale = machine.scale
    bc = np.zeros(graph.num_vertices)
    for src in sources:
        metrics = enactor.enact(src=int(src))
        bc += problem.bc_values()
        total.elapsed += metrics.elapsed
        total.iterations.extend(metrics.iterations)
        total.num_reallocs += metrics.num_reallocs
        for g, peak in metrics.peak_memory.items():
            total.peak_memory[g] = max(total.peak_memory.get(g, 0), peak)
    return bc, total, problem
