"""PageRank (paper Algorithm 3).

* Vertex duplication: duplicate-all or duplicate-1-hop — "there is no
  significant performance or memory usage difference between these two";
  the paper uses duplicate-all "to better trace the program", so do we
  (duplicate-1-hop is a constructor flag).
* Computation: a filter kernel updating the PR values (except the 1st
  iteration), followed by an advance kernel accumulating contributions:
  W = O(|Ei|) per iteration.
* Communication: **selective** — "push locally accumulated ranks of each
  vertex to its hosting GPU".  The remote sub-frontiers (border proxies
  with local in-edges) never change, so they are computed once at init;
  H = O(|Bi|) per iteration.
* Combination: ``atomicAdd`` of the received partial rank into the local
  accumulator.
* Convergence: all rank updates below a threshold ratio, or the iteration
  cap; S is data-dependent and does not affect scalability.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..core import combine
from ..core.comm import SELECTIVE, Message
from ..core.iteration import GpuContext, IterationBase
from ..core.problem import DataSlice, ProblemBase
from ..core.stats import OpStats
from ..partition.duplication import DUPLICATE_ALL, SubGraph

__all__ = ["PRProblem", "PRIteration", "run_pagerank"]


class PRProblem(ProblemBase):
    """Per-GPU PR state: ranks, accumulators, fixed border sub-frontiers."""

    name = "pr"
    duplication = DUPLICATE_ALL
    communication = SELECTIVE
    NUM_VALUE_ASSOCIATES = 1  # the accumulated rank share
    uses_intermediate = False  # accumulation is in-place (no frontier out)
    # partial rank shares atomicAdd-combine (Algorithm 3); "rank" itself
    # is only ever written by the hosting GPU, so it needs no combiner
    combiners = {"acc": combine.SUM}
    # per-GPU convergence deltas live outside the data slices; a rollback
    # must restore them or should_stop() reads post-fault values
    CHECKPOINT_ATTRS = ("max_delta",)
    # hooks write max_delta[gpu] inside the superstep (should_stop reads
    # the max parent-side), so forked workers must ship it back
    PER_GPU_MUTABLE_ATTRS = ("max_delta",)

    def __init__(
        self,
        *args,
        damping: float = 0.85,
        threshold: float = 1e-6,
        max_iter: int = 1000,
        personalization=None,
        **kwargs,
    ):
        """``personalization``: optional array over global vertices (or a
        sequence of seed vertex IDs) replacing the uniform teleport — the
        personalized-PageRank extension.  ``None`` keeps classic PR."""
        self.damping = damping
        self.threshold = threshold
        self.max_iter = max_iter
        self.personalization = personalization
        super().__init__(*args, **kwargs)
        self._compute_fixed_frontiers()

    def _compute_fixed_frontiers(self) -> None:
        """Fixed per-GPU sub-frontiers, computed once (paper: "we get all
        these sub-frontiers during the initialization step"):

        - hosted: the vertices this GPU updates every iteration;
        - border: proxy vertices with local in-edges, whose accumulated
          contributions are pushed to their hosting GPUs.
        """
        self.hosted_frontiers: List[np.ndarray] = []
        self.border_frontiers: List[np.ndarray] = []
        for sub in self.subgraphs:
            hosted = np.flatnonzero(sub.host_of_local == sub.gpu_id)
            targets = np.unique(sub.csr.cols64)
            border = targets[sub.host_of_local[targets] != sub.gpu_id]
            self.hosted_frontiers.append(hosted)
            self.border_frontiers.append(border)

    def on_repartition(self, dead=frozenset()) -> None:
        """Recompute the fixed sub-frontiers for the new assignment, and
        retire dead GPUs from the convergence vote: their ``max_delta``
        entries would otherwise stay at the rolled-back value forever and
        ``should_stop`` would never see convergence."""
        self._compute_fixed_frontiers()
        if dead:
            self.max_delta[list(dead)] = 0.0

    def init_data_slice(self, ds: DataSlice, sub: SubGraph) -> None:
        ids = sub.csr.ids
        ds.allocate("rank", sub.num_vertices, ids.value_dtype, fill=0.0)
        ds.allocate("acc", sub.num_vertices, ids.value_dtype, fill=0.0)
        # local degree: out-degree of hosted vertices equals their global
        # out-degree because edge-cut partitioning keeps all out-edges
        degrees = np.diff(sub.csr.row_offsets).astype(ids.value_dtype)
        ds.allocate("degree", sub.num_vertices, ids.value_dtype)
        ds["degree"][:] = degrees
        ds.allocate("delta", sub.num_vertices, ids.value_dtype, fill=np.inf)
        if self.personalization is not None:
            # classic PR's uniform teleport needs no array at all — only
            # personalized PR pays for the per-vertex distribution
            ds.allocate("teleport", sub.num_vertices, ids.value_dtype,
                        fill=1.0)

    def _teleport(self) -> np.ndarray:
        """Per-global-vertex teleport mass (scaled so uniform PR keeps the
        paper's unnormalized 1-d base rank convention)."""
        n = self.graph.num_vertices
        if self.personalization is None:
            return np.ones(n)
        p = np.asarray(self.personalization, dtype=np.float64)
        if p.ndim == 1 and p.size != n:
            # a seed list: uniform teleport over the seeds only
            seeds = np.asarray(self.personalization, dtype=np.int64)
            p = np.zeros(n)
            p[seeds] = 1.0
        if p.sum() <= 0:
            raise ValueError("personalization must have positive mass")
        return p * (n / p.sum())

    def reset(self) -> List[np.ndarray]:
        personalized = self.personalization is not None
        teleport = self._teleport() if personalized else None
        for gpu, ds in enumerate(self.data_slices):
            sub = self.subgraphs[gpu]
            ds["rank"].fill(0.0)
            hosted = self.hosted_frontiers[gpu]
            if personalized:
                ds["teleport"][:] = teleport[sub.local_to_global]
                ds["rank"][hosted] = (
                    (1.0 - self.damping) * ds["teleport"][hosted]
                )
            else:
                ds["rank"][hosted] = 1.0 - self.damping
            ds["acc"].fill(0.0)
            ds["delta"].fill(np.inf)
        self.max_delta = np.full(self.num_gpus, np.inf)
        return [f.copy() for f in self.hosted_frontiers]

    def ranks(self) -> np.ndarray:
        """Global rank vector (unnormalized, paper convention)."""
        return self.extract("rank")


class PRIteration(IterationBase):
    """Filter (rank update) + advance (contribution push) core."""

    def full_queue_core(
        self, ctx: GpuContext, frontier: np.ndarray
    ) -> Tuple[np.ndarray, List[OpStats]]:
        problem: PRProblem = self.problem  # type: ignore[assignment]
        gpu = ctx.gpu.device_id
        ds = ctx.slice
        sub = ctx.sub
        hosted = problem.hosted_frontiers[gpu]
        border = problem.border_frontiers[gpu]
        rank, acc, degree = ds["rank"], ds["acc"], ds["degree"]
        stats: List[OpStats] = []

        if ctx.iteration > 0:
            # filter kernel: fold the completed accumulator into new ranks
            if "teleport" in ds:
                base = (1.0 - problem.damping) * ds["teleport"][hosted]
            else:
                base = 1.0 - problem.damping
            new_rank = base + acc[hosted]
            old = rank[hosted]
            with np.errstate(divide="ignore", invalid="ignore"):
                delta = np.abs(new_rank - old) / np.maximum(old, 1e-12)
            rank[hosted] = new_rank
            problem.max_delta[gpu] = float(delta.max()) if delta.size else 0.0
            stats.append(
                OpStats(
                    name="pr-filter",
                    input_size=int(hosted.size),
                    output_size=int(hosted.size),
                    vertices_processed=int(hosted.size),
                    launches=1,
                    streaming_bytes=3 * hosted.size * 8,
                )
            )
        # reset accumulators for this iteration's pushes
        acc.fill(0.0)

        # advance kernel: every hosted vertex pushes its share along its
        # out-edges (local ones land in acc; border entries travel later)
        csr = sub.csr
        offsets = csr.offsets64
        counts = offsets[hosted + 1] - offsets[hosted]
        nonzero = counts > 0
        pushers = hosted[nonzero]
        if pushers.size:
            share = problem.damping * rank[pushers] / degree[pushers]
            p_counts = counts[nonzero]
            total = int(p_counts.sum())
            seg_base = np.repeat(
                offsets[pushers] + p_counts - np.cumsum(p_counts), p_counts
            )
            ws = ctx.workspace
            if ws is None:
                edge_idx = seg_base + np.arange(total, dtype=np.int64)
                nbrs = csr.cols64[edge_idx]
            else:
                edge_idx = ws.take("pr.edge_idx", total, np.int64)
                np.add(seg_base, ws.iota(total), out=edge_idx)
                nbrs = np.take(
                    csr.cols64, edge_idx,
                    out=ws.take("pr.nbrs", total, np.int64),
                )
            np.add.at(acc, nbrs, np.repeat(share, p_counts))
            stats.append(
                OpStats(
                    name="pr-advance",
                    input_size=int(pushers.size),
                    output_size=total,
                    edges_visited=total,
                    vertices_processed=int(pushers.size),
                    launches=1,
                    streaming_bytes=(pushers.size + total) * ctx.ids_bytes,
                    # accumulator adds land on ~distinct addresses: charge
                    # them as random writes, not serialized atomics
                    random_bytes=total * (ctx.ids_bytes + 8 + 8),
                )
            )
        else:
            stats.append(OpStats(name="pr-advance", launches=1))
        # output frontier: hosted vertices (stay local) + border proxies
        # (split sends them to their hosts with the accumulated share)
        out = np.concatenate([hosted, border])
        return out, stats

    def expand_incoming(
        self, ctx: GpuContext, msg: Message
    ) -> Tuple[np.ndarray, List[OpStats]]:
        acc = ctx.slice["acc"]
        verts = np.asarray(msg.vertices, dtype=np.int64)
        contrib = np.asarray(msg.value_associates[0], dtype=np.float64)
        # atomicAdd combine (Algorithm 3)
        np.add.at(acc, verts, contrib)
        stats = OpStats(
            name="expand_incoming",
            input_size=int(verts.size),
            vertices_processed=int(verts.size),
            launches=1,
            streaming_bytes=verts.size * (ctx.ids_bytes + 8),
            random_bytes=verts.size * 8,
            atomic_ops=float(verts.size),
        )
        # received vertices are already in the receiver's hosted frontier
        return np.empty(0, dtype=np.int64), [stats]

    def value_associate_arrays(self, ctx: GpuContext) -> Sequence[np.ndarray]:
        return [ctx.slice["acc"]]

    def should_stop(self, iteration, frontier_sizes, messages_in_flight) -> bool:
        problem: PRProblem = self.problem  # type: ignore[assignment]
        if iteration + 1 >= problem.max_iter:
            return True
        if iteration == 0:
            return False  # deltas not yet defined
        return bool(np.max(problem.max_delta) < problem.threshold)

    def max_iterations(self) -> int:
        problem: PRProblem = self.problem  # type: ignore[assignment]
        return problem.max_iter + 1


def run_pagerank(
    graph,
    machine,
    damping: float = 0.85,
    threshold: float = 1e-6,
    max_iter: int = 1000,
    partitioner=None,
    scheme=None,
    duplication: str = DUPLICATE_ALL,
    personalization=None,
    **enactor_kwargs,
):
    """Convenience one-shot PageRank: returns (ranks, metrics, problem)."""
    from ..core.enactor import Enactor
    from ..sim.memory import FixedPrealloc

    problem = PRProblem(
        graph,
        machine,
        partitioner=partitioner,
        damping=damping,
        threshold=threshold,
        max_iter=max_iter,
        duplication=duplication,
        personalization=personalization,
    )
    # the paper uses fixed preallocation for PR, whose memory needs are
    # known exactly beforehand: frontier = hosted + border, no intermediate
    enactor = Enactor(
        problem,
        PRIteration,
        scheme=scheme or FixedPrealloc(frontier_factor=1.05),
        **enactor_kwargs,
    )
    metrics = enactor.enact()
    return problem.ranks(), metrics, problem
