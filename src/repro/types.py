"""Core scalar types for vertex and edge identifiers.

The paper (Section VII-D, Table V) evaluates both 32-bit and 64-bit vertex
and edge IDs: 64-bit IDs double the bytes moved per edge and roughly halve
BFS throughput.  To reproduce that experiment the whole library is
parameterized on an :class:`IdConfig` that selects the NumPy dtypes used for
vertex IDs (``VertexT``), edge IDs / offsets (``SizeT``) and per-edge values
(``ValueT``).

Every graph structure records the :class:`IdConfig` it was built with, and
the simulator's cost model charges communication and memory traffic by the
actual ``itemsize`` of these dtypes, which is what makes the Table V
experiment fall out naturally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "IdConfig",
    "ID32",
    "ID64",
    "ID32_V64E",
    "ID32_F32",
    "INVALID_VERTEX",
    "invalid_vertex",
]


@dataclass(frozen=True)
class IdConfig:
    """Selects the integer widths used for vertex IDs and edge offsets.

    Attributes
    ----------
    vertex_dtype:
        dtype for vertex identifiers (``VertexT`` in the paper's code).
    size_dtype:
        dtype for edge identifiers and CSR offsets (``SizeT``).
    value_dtype:
        dtype for per-edge values (weights) and per-vertex floating data.
    """

    vertex_dtype: np.dtype
    size_dtype: np.dtype
    value_dtype: np.dtype = np.dtype(np.float64)

    def __post_init__(self) -> None:
        # dataclass(frozen=True) requires object.__setattr__ for normalization
        object.__setattr__(self, "vertex_dtype", np.dtype(self.vertex_dtype))
        object.__setattr__(self, "size_dtype", np.dtype(self.size_dtype))
        object.__setattr__(self, "value_dtype", np.dtype(self.value_dtype))
        for name in ("vertex_dtype", "size_dtype"):
            dt = getattr(self, name)
            if dt.kind not in "iu":
                raise TypeError(f"{name} must be an integer dtype, got {dt}")

    @property
    def vertex_bytes(self) -> int:
        """Bytes per vertex ID."""
        return self.vertex_dtype.itemsize

    @property
    def size_bytes(self) -> int:
        """Bytes per edge ID / CSR offset."""
        return self.size_dtype.itemsize

    @property
    def value_bytes(self) -> int:
        """Bytes per associated value."""
        return self.value_dtype.itemsize

    def max_vertex(self) -> int:
        """Largest representable vertex ID (used as the invalid marker)."""
        return int(np.iinfo(self.vertex_dtype).max)

    def max_size(self) -> int:
        """Largest representable edge count."""
        return int(np.iinfo(self.size_dtype).max)

    def describe(self) -> str:
        return (
            f"IdConfig(vertex={self.vertex_dtype.name}, "
            f"size={self.size_dtype.name}, value={self.value_dtype.name})"
        )


#: 32-bit vertex and edge IDs — the paper's default configuration.
ID32 = IdConfig(np.int32, np.int32)

#: 64-bit vertex and edge IDs (Table V "64bit vID" row).
ID64 = IdConfig(np.int64, np.int64)

#: 32-bit vertex IDs with 64-bit edge IDs (Table V "64bit eID" row): needed
#: once |E| exceeds 2^31 even though |V| still fits in 32 bits.
ID32_V64E = IdConfig(np.int32, np.int64)

#: 32-bit everything, including float32 edge values — what GPU SSSP
#: actually stores (the paper's weights are integers in [0, 64]).
ID32_F32 = IdConfig(np.int32, np.int32, np.float32)


def invalid_vertex(ids: IdConfig) -> int:
    """Sentinel vertex ID meaning "no vertex" (e.g. unset predecessor)."""
    return ids.max_vertex()


#: Invalid-vertex sentinel for the default :data:`ID32` configuration.
INVALID_VERTEX = invalid_vertex(ID32)
