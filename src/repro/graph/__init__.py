"""Graph substrate: containers, builders, generators, datasets, properties."""

from .binformat import load_npz, save_npz
from .build import add_random_weights, build_csr, from_edges, line_graph_path
from .coo import CooGraph
from .csr import CsrGraph
from .properties import (
    DegreeStats,
    approximate_diameter,
    bfs_levels,
    degree_stats,
    largest_component_fraction,
)

__all__ = [
    "CooGraph",
    "CsrGraph",
    "build_csr",
    "from_edges",
    "add_random_weights",
    "line_graph_path",
    "save_npz",
    "load_npz",
    "bfs_levels",
    "approximate_diameter",
    "largest_component_fraction",
    "degree_stats",
    "DegreeStats",
]
