"""Compressed-sparse-row graph structure.

CSR is the storage format Gunrock uses on the GPU: ``row_offsets`` of length
``|V|+1`` and ``col_indices`` of length ``|E|``.  The advance operator's
cost model charges memory traffic per offset and per column index read, so
the arrays use the dtypes from the graph's :class:`~repro.types.IdConfig`
(this is how the 32- vs 64-bit ID experiment of Table V is expressed).

A :class:`CsrGraph` may also carry its transpose (``csc``) for pull-style
(backward) traversal, which direction-optimizing BFS requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import GraphFormatError
from ..types import ID32, IdConfig
from .coo import CooGraph

__all__ = ["CsrGraph"]


@dataclass
class CsrGraph:
    """A graph in CSR form, optionally weighted and optionally transposed.

    Attributes
    ----------
    num_vertices:
        Vertex count.  ``row_offsets`` has ``num_vertices + 1`` entries.
    row_offsets:
        Monotone array of edge offsets (``SizeT`` dtype).
    col_indices:
        Destination vertex of each edge (``VertexT`` dtype).
    values:
        Optional per-edge values aligned with ``col_indices``.
    ids:
        Integer-width configuration.
    directed:
        Whether the CSR encodes a directed graph.
    """

    num_vertices: int
    row_offsets: np.ndarray
    col_indices: np.ndarray
    values: Optional[np.ndarray] = None
    ids: IdConfig = field(default=ID32)
    directed: bool = True
    _csc: Optional["CsrGraph"] = field(default=None, repr=False, compare=False)
    _offsets64: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )
    _cols64: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.row_offsets = np.asarray(self.row_offsets, dtype=self.ids.size_dtype)
        self.col_indices = np.asarray(self.col_indices, dtype=self.ids.vertex_dtype)
        if self.values is not None:
            self.values = np.asarray(self.values, dtype=self.ids.value_dtype)
        self._offsets64 = None
        self._cols64 = None
        self.validate()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: CooGraph, sort_neighbors: bool = True) -> "CsrGraph":
        """Build a CSR graph from an edge list.

        Edges are bucketed by source vertex with a counting sort (O(|V|+|E|),
        fully vectorized).  When ``sort_neighbors`` is true each adjacency
        list is additionally sorted by destination, which makes traversal
        deterministic and binary-searchable.
        """
        n = coo.num_vertices
        ids = coo.ids
        counts = np.bincount(coo.src, minlength=n).astype(ids.size_dtype)
        row_offsets = np.zeros(n + 1, dtype=ids.size_dtype)
        np.cumsum(counts, out=row_offsets[1:])
        if sort_neighbors:
            order = np.lexsort((coo.dst, coo.src))
        else:
            order = np.argsort(coo.src, kind="stable")
        col_indices = coo.dst[order].astype(ids.vertex_dtype)
        values = None
        if coo.values is not None:
            values = coo.values[order].astype(ids.value_dtype)
        return cls(
            n, row_offsets, col_indices, values, ids=ids, directed=coo.directed
        )

    def to_coo(self) -> CooGraph:
        """Expand back to an edge list (sources repeated per degree)."""
        src = np.repeat(
            np.arange(self.num_vertices, dtype=self.ids.vertex_dtype),
            np.diff(self.row_offsets).astype(np.int64),
        )
        return CooGraph(
            self.num_vertices,
            src,
            self.col_indices.copy(),
            None if self.values is None else self.values.copy(),
            ids=self.ids,
            directed=self.directed,
        )

    def validate(self) -> None:
        """Check structural invariants; raise :class:`GraphFormatError`."""
        n = self.num_vertices
        if self.row_offsets.shape != (n + 1,):
            raise GraphFormatError(
                f"row_offsets must have length |V|+1={n + 1}, "
                f"got {self.row_offsets.shape}"
            )
        if n >= 0 and self.row_offsets.size and int(self.row_offsets[0]) != 0:
            raise GraphFormatError("row_offsets[0] must be 0")
        if np.any(np.diff(self.row_offsets) < 0):
            raise GraphFormatError("row_offsets must be non-decreasing")
        m = int(self.row_offsets[-1]) if self.row_offsets.size else 0
        if self.col_indices.size != m:
            raise GraphFormatError(
                f"col_indices length {self.col_indices.size} != row_offsets[-1]={m}"
            )
        if self.values is not None and self.values.size != m:
            raise GraphFormatError("values length must equal edge count")
        if self.col_indices.size:
            cmin = int(self.col_indices.min())
            cmax = int(self.col_indices.max())
            if cmin < 0 or cmax >= n:
                raise GraphFormatError(
                    f"col index out of range [0, {n}): saw [{cmin}, {cmax}]"
                )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return int(self.row_offsets[-1]) if self.row_offsets.size else 0

    @property
    def offsets64(self) -> np.ndarray:
        """``row_offsets`` at the canonical int64 compute width, cached.

        Operators index CSR structure with int64 regardless of the
        graph's stored ``IdConfig`` width (the Table V lever only affects
        *charged traffic*, never host compute dtypes).  Converting per
        call was an O(|V|) copy on every advance; the arrays are
        immutable after construction, so one cached read-only conversion
        serves every traversal.  When the stored dtype already is int64
        this is the array itself — zero copies.
        """
        if self._offsets64 is None:
            off = self.row_offsets
            if off.dtype != np.int64:
                off = off.astype(np.int64)
                off.setflags(write=False)
            self._offsets64 = off
        return self._offsets64

    @property
    def cols64(self) -> np.ndarray:
        """``col_indices`` at int64, cached read-only (see ``offsets64``).

        Gathers through this view produce int64 neighbor lists directly —
        one pass instead of gather-then-``astype``.
        """
        if self._cols64 is None:
            cols = self.col_indices
            if cols.dtype != np.int64:
                cols = cols.astype(np.int64)
                cols.setflags(write=False)
            self._cols64 = cols
        return self._cols64

    def out_degree(self, v: Optional[np.ndarray] = None) -> np.ndarray:
        """Out-degrees of ``v`` (or all vertices if ``v`` is None)."""
        deg = np.diff(self.row_offsets)
        if v is None:
            return deg
        return deg[np.asarray(v)]

    def neighbors(self, v: int) -> np.ndarray:
        """The adjacency list of a single vertex (a view, not a copy)."""
        return self.col_indices[self.row_offsets[v] : self.row_offsets[v + 1]]

    def edge_values(self, v: int) -> Optional[np.ndarray]:
        """Values on the out-edges of ``v`` (None if unweighted)."""
        if self.values is None:
            return None
        return self.values[self.row_offsets[v] : self.row_offsets[v + 1]]

    def average_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    # ------------------------------------------------------------------
    # transpose (CSC) support for pull traversal
    # ------------------------------------------------------------------
    @property
    def csc(self) -> "CsrGraph":
        """The transpose graph (incoming edges), built lazily and cached.

        For an undirected graph the transpose equals the graph itself, so we
        return ``self`` and spend no extra memory — this mirrors the paper's
        datasets, which are converted to undirected form.
        """
        if not self.directed:
            return self
        if self._csc is None:
            self._csc = CsrGraph.from_coo(self.to_coo().reverse())
        return self._csc

    def memory_bytes(self) -> int:
        """Bytes the CSR arrays occupy (what a device must hold)."""
        total = self.row_offsets.nbytes + self.col_indices.nbytes
        if self.values is not None:
            total += self.values.nbytes
        return int(total)

    def with_ids(self, ids: IdConfig) -> "CsrGraph":
        """Re-type the graph to a different ID width configuration."""
        if self.num_edges > ids.max_size():
            raise GraphFormatError(
                f"graph has {self.num_edges} edges, too many for "
                f"{ids.size_dtype.name} edge IDs"
            )
        if self.num_vertices > ids.max_vertex():
            raise GraphFormatError(
                f"graph has {self.num_vertices} vertices, too many for "
                f"{ids.vertex_dtype.name} vertex IDs"
            )
        return CsrGraph(
            self.num_vertices,
            self.row_offsets.astype(ids.size_dtype),
            self.col_indices.astype(ids.vertex_dtype),
            None if self.values is None else self.values.astype(ids.value_dtype),
            ids=ids,
            directed=self.directed,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "directed" if self.directed else "undirected"
        return f"CsrGraph({kind}, |V|={self.num_vertices}, |E|={self.num_edges})"
