"""Binary graph format (.npz): fast save/load of CSR graphs.

Parsing billion-edge text files dominates end-to-end time in real graph
systems; every serious framework (including Gunrock) caches a binary
form.  Ours is a NumPy ``.npz`` with the CSR arrays plus a small header,
preserving ID widths, direction and edge values exactly.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphFormatError
from ..types import IdConfig
from .csr import CsrGraph

__all__ = ["save_npz", "load_npz"]

_FORMAT_VERSION = 1


def save_npz(graph: CsrGraph, path) -> None:
    """Serialize a CSR graph to ``path`` (compressed .npz)."""
    payload = {
        "format_version": np.int64(_FORMAT_VERSION),
        "num_vertices": np.int64(graph.num_vertices),
        "directed": np.bool_(graph.directed),
        "row_offsets": graph.row_offsets,
        "col_indices": graph.col_indices,
        "value_dtype": np.bytes_(graph.ids.value_dtype.str.encode()),
    }
    if graph.values is not None:
        payload["values"] = graph.values
    np.savez_compressed(path, **payload)


def load_npz(path) -> CsrGraph:
    """Load a CSR graph written by :func:`save_npz`."""
    with np.load(path) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise GraphFormatError(
                f"unsupported graph format version {version}"
            )
        row_offsets = data["row_offsets"]
        col_indices = data["col_indices"]
        values = data["values"] if "values" in data.files else None
        ids = IdConfig(
            vertex_dtype=col_indices.dtype,
            size_dtype=row_offsets.dtype,
            value_dtype=np.dtype(bytes(data["value_dtype"]).decode()),
        )
        return CsrGraph(
            int(data["num_vertices"]),
            row_offsets,
            col_indices,
            values,
            ids=ids,
            directed=bool(data["directed"]),
        )
