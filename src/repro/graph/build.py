"""High-level graph construction pipeline.

Mirrors the paper's dataset preparation (Section VII-A): graphs are
converted to undirected form unless otherwise specified; self-loops and
duplicated edges are removed; SSSP edge values are random integers in
``[0, 64)``.
"""

from __future__ import annotations

import numpy as np

from ..types import ID32, IdConfig
from .coo import CooGraph
from .csr import CsrGraph

__all__ = ["build_csr", "from_edges", "add_random_weights", "line_graph_path"]


def build_csr(
    coo: CooGraph,
    undirected: bool = True,
    remove_self_loops: bool = True,
    remove_duplicates: bool = True,
) -> CsrGraph:
    """Clean an edge list per the paper's recipe and produce a CSR graph.

    Parameters
    ----------
    coo:
        Raw edge list.
    undirected:
        Symmetrize the graph ("all graphs we use are converted to
        undirected", Section VII-A).  Implies duplicate removal.
    remove_self_loops, remove_duplicates:
        Cleanup passes, both applied by default.
    """
    g = coo
    if remove_self_loops:
        g = g.remove_self_loops()
    if undirected:
        g = g.to_undirected()  # includes dedup
    elif remove_duplicates:
        g = g.remove_duplicates()
    return CsrGraph.from_coo(g)


def from_edges(
    num_vertices: int,
    edges,
    ids: IdConfig = ID32,
    undirected: bool = True,
    values=None,
) -> CsrGraph:
    """Convenience builder from a Python iterable of (u, v) pairs."""
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if arr.size == 0:
        arr = arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError("edges must be an iterable of (u, v) pairs")
    coo = CooGraph(
        num_vertices,
        arr[:, 0],
        arr[:, 1],
        values=None if values is None else np.asarray(values),
        ids=ids,
    )
    return build_csr(coo, undirected=undirected)


def add_random_weights(
    graph: CsrGraph, low: int = 0, high: int = 64, seed: int = 0
) -> CsrGraph:
    """Attach random integer edge weights in ``[low, high)``.

    The paper uses random integers from [0, 64] for SSSP edge values.  Note:
    for an undirected graph the two directions of an edge get independent
    weights, which is also what the GPU frameworks being reproduced do when
    weights are generated post-symmetrization.
    """
    rng = np.random.default_rng(seed)
    w = rng.integers(low, high, size=graph.num_edges).astype(
        graph.ids.value_dtype
    )
    return CsrGraph(
        graph.num_vertices,
        graph.row_offsets.copy(),
        graph.col_indices.copy(),
        w,
        ids=graph.ids,
        directed=graph.directed,
    )


def line_graph_path(num_vertices: int, ids: IdConfig = ID32) -> CsrGraph:
    """A simple path 0-1-2-...-(n-1).

    This is the workload of the paper's synchronization-latency experiment
    (Section V-B): each BFS iteration visits exactly 1 vertex and 1 edge, so
    runtime measures per-iteration overhead ``l``.
    """
    if num_vertices < 2:
        return from_edges(num_vertices, [], ids=ids)
    u = np.arange(num_vertices - 1)
    edges = np.stack([u, u + 1], axis=1)
    return from_edges(num_vertices, edges, ids=ids, undirected=True)
