"""Dataset registry: scaled stand-ins for every graph in the paper.

The paper's Table II evaluates three representative power-law families
("soc" online social networks, "web" crawls, "rmat" synthetic) plus road
networks as the hard high-diameter case, with graphs of 1M-118M vertices
and 85M-1.71B edges.  Graphs of that size are neither loadable here (no
data access) nor needed: every conclusion in the paper is family-level, so
each named dataset maps to a synthetic stand-in from the same family whose
*shape parameters* (edge factor, power-law-ness, diameter regime) mirror
the original, scaled down ~2^10 in vertex count so pure-NumPy execution
stays fast.

``load("soc-orkut")`` returns the stand-in CSR graph; ``SPEC`` records the
original statistics alongside for documentation and for scaling plots that
want the paper's |V|/|E| ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Optional, Tuple

from ..types import ID32, IdConfig
from .csr import CsrGraph
from .generators import (
    MERRILL_RMAT,
    PAPER_RMAT,
    generate_rmat,
    generate_road,
    generate_social,
    generate_web,
)

__all__ = ["DatasetSpec", "REGISTRY", "names", "load", "spec", "family_of", "machine_scale"]


@dataclass(frozen=True)
class DatasetSpec:
    """Describes one paper dataset and how we synthesize its stand-in."""

    name: str
    family: str  # "soc" | "web" | "rmat" | "road"
    paper_vertices: float  # the original graph's |V|
    paper_edges: float  # the original graph's |E|
    paper_diameter: float
    builder: Callable[[], CsrGraph] = None  # type: ignore[assignment]
    notes: str = ""

    def build(self) -> CsrGraph:
        return self.builder()

    def scale_factor(self, graph: Optional[CsrGraph] = None) -> float:
        """The machine scale matching this stand-in (DESIGN.md).

        paper |V| / stand-in |V|: with this scale the simulator charges
        the same absolute communication volume per frontier vertex as the
        paper's full-size graph, so the W : Hg : Sl balance is preserved.
        """
        if graph is None:
            graph = load(self.name)
        return float(self.paper_vertices) / max(graph.num_vertices, 1)


def _rmat(scale: int, edge_factor: int, seed: int = 1) -> Callable[[], CsrGraph]:
    return lambda: generate_rmat(scale, edge_factor, params=PAPER_RMAT, seed=seed)


def _soc(n: int, ef: int, gamma: float = 2.2, seed: int = 3) -> Callable[[], CsrGraph]:
    return lambda: generate_social(n, ef, gamma=gamma, seed=seed)


def _web(n: int, ef: int, seed: int = 11) -> Callable[[], CsrGraph]:
    return lambda: generate_web(n, ef, seed=seed)


def _road(w: int, h: int, seed: int = 7) -> Callable[[], CsrGraph]:
    # no random long-range shortcuts: real road networks are not
    # small-world, and the high diameter is the whole point of the family
    return lambda: generate_road(
        w, h, seed=seed, shortcut_fraction=0.0, delete_fraction=0.08
    )


# ---------------------------------------------------------------------------
# Table II registry.  Stand-in sizes: "soc"/"web" graphs use 2^12..2^14
# vertices; edge factors follow the original |E|/|V| ratio.  rmat scaling
# keeps the paper's scale-vs-edge-factor trade (n20_512 ... n25_16 all have
# roughly equal |E|) at scale-8 smaller.
# ---------------------------------------------------------------------------
_SPECS = [
    # --- soc group -------------------------------------------------------
    DatasetSpec("soc-LiveJournal1", "soc", 4.85e6, 85.7e6, 13, _soc(4096, 18)),
    DatasetSpec("hollywood-2009", "soc", 1.14e6, 113e6, 8, _soc(2048, 64, gamma=2.0)),
    DatasetSpec("soc-orkut", "soc", 3.00e6, 213e6, 7, _soc(4096, 64, gamma=2.1)),
    DatasetSpec("soc-sinaweibo", "soc", 58.7e6, 523e6, 5, _soc(16384, 9, gamma=2.05)),
    DatasetSpec("soc-twitter-2010", "soc", 21.3e6, 530e6, 15, _soc(8192, 25)),
    # --- web group -------------------------------------------------------
    DatasetSpec("indochina-2004", "web", 7.41e6, 302e6, 24, _web(6144, 40)),
    DatasetSpec("uk-2002", "web", 18.5e6, 524e6, 25, _web(8192, 28)),
    DatasetSpec("arabic-2005", "web", 22.7e6, 1.11e9, 28, _web(8192, 48)),
    DatasetSpec("uk-2005", "web", 39.5e6, 1.57e9, 23, _web(12288, 40)),
    DatasetSpec("webbase-2001", "web", 118e6, 1.71e9, 379, _web(16384, 14)),
    # --- rmat group: vertex scale reduced by 2^9, edge factors kept as in
    # the paper's names so the |E|/|V| regime (what decides DOBFS's W vs H
    # balance) is preserved.  n20_512 saturates somewhat at this size, as
    # any downscale of a graph denser than its vertex count allows must. --
    DatasetSpec("rmat_n20_512", "rmat", 1.05e6, 728e6, 6.26, _rmat(11, 512)),
    DatasetSpec("rmat_n21_256", "rmat", 2.10e6, 839e6, 7.22, _rmat(12, 256)),
    DatasetSpec("rmat_n22_128", "rmat", 4.19e6, 925e6, 7.56, _rmat(13, 128)),
    DatasetSpec("rmat_n23_64", "rmat", 8.39e6, 985e6, 8.32, _rmat(14, 64)),
    DatasetSpec("rmat_n24_32", "rmat", 16.8e6, 1.02e9, 8.61, _rmat(15, 32)),
    DatasetSpec("rmat_n25_16", "rmat", 33.6e6, 1.05e9, 9.06, _rmat(16, 16)),
    # --- aliases used by the comparison tables (kron == rmat family) ------
    DatasetSpec("kron_n24_32", "rmat", 16.8e6, 1.07e9, 9, _rmat(15, 32, seed=5),
                notes="Table III Enterprise comparison graph"),
    DatasetSpec("kron_n23_16", "rmat", 8e6, 256e6, 9, _rmat(14, 16, seed=5),
                notes="Table III Bernaschi comparison graph"),
    DatasetSpec("kron_n25_16", "rmat", 32e6, 1.07e9, 9, _rmat(16, 16, seed=5),
                notes="Table III Bernaschi comparison graph"),
    DatasetSpec("kron_n25_32", "rmat", 32e6, 1.07e9, 9, _rmat(16, 32, seed=5),
                notes="Table III Fu comparison graph"),
    DatasetSpec("kron_n23_32", "rmat", 8e6, 256e6, 9, _rmat(14, 32, seed=5),
                notes="Table III Fu comparison graph"),
    DatasetSpec("rmat_2Mv_128Me", "rmat", 2e6, 128e6, 8,
                lambda: generate_rmat(
                    12, 64, params=MERRILL_RMAT, seed=21
                ),
                notes="Table III B40C comparison graph (Merrill's rmat "
                      "parameters {0.45, 0.15, 0.15, 0.25})"),
    DatasetSpec("com-orkut", "soc", 3e6, 117e6, 9, _soc(4096, 36, seed=9),
                notes="Table III Bisson comparison graph"),
    DatasetSpec("com-Friendster", "soc", 66e6, 1.81e9, 32, _soc(16384, 27, seed=9),
                notes="Table III Bisson comparison graph"),
    DatasetSpec("coPapersCiteseer", "soc", 0.43e6, 32.1e6, 26, _soc(1024, 72, gamma=2.6, seed=13),
                notes="Table III Medusa comparison graph"),
    DatasetSpec("twitter-mpi", "soc", 52.6e6, 1.96e9, 14, _soc(12288, 36, seed=15),
                notes="Table III Bebee / Table IV Totem comparison graph"),
    DatasetSpec("twitter-rv", "soc", 42e6, 1.5e9, 15, _soc(12288, 34, seed=17),
                notes="Table IV Frog/GraphMap comparison graph"),
    # --- Table V large graphs --------------------------------------------
    DatasetSpec("friendster", "soc", 125e6, 3.62e9, 32, _soc(20480, 15, seed=19),
                notes="Table V large graph"),
    DatasetSpec("sk-2005", "web", 50.6e6, 1.9e9, 40, _web(16384, 20, seed=19),
                notes="Table V large graph"),
    # --- road network (Section V-B / VII-A hard case) ---------------------
    DatasetSpec("road-grid", "road", 24e6, 58e6, 6000, _road(64, 960),
                notes="road-network stand-in: high diameter, degree ~2.5"),
]

REGISTRY: Dict[str, DatasetSpec] = {s.name: s for s in _SPECS}


def names(family: Optional[str] = None) -> Tuple[str, ...]:
    """All dataset names, optionally filtered to one family."""
    if family is None:
        return tuple(REGISTRY)
    return tuple(n for n, s in REGISTRY.items() if s.family == family)


def spec(name: str) -> DatasetSpec:
    """The :class:`DatasetSpec` for ``name`` (KeyError if unknown)."""
    return REGISTRY[name]


def family_of(name: str) -> str:
    """The dataset's family: "soc", "web", "rmat" or "road"."""
    return REGISTRY[name].family


@lru_cache(maxsize=64)
def load(name: str, ids: IdConfig = ID32) -> CsrGraph:
    """Build (and cache) the stand-in graph for a paper dataset.

    The returned graph is shared across callers — treat it as read-only.
    """
    g = REGISTRY[name].build()
    if ids != ID32:
        g = g.with_ids(ids)
    return g


def machine_scale(name: str) -> float:
    """The simulator scale matching dataset ``name`` (DESIGN.md)."""
    return REGISTRY[name].scale_factor(load(name))
