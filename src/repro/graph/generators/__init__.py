"""Synthetic graph generators for the paper's dataset families.

Four families, matching Table II plus the road-network discussion:

* :mod:`~repro.graph.generators.rmat` — GTgraph-faithful R-MAT
  (the "rmat"/"kron" group and all scaling workloads);
* :mod:`~repro.graph.generators.social` — power-law Chung-Lu graphs
  (the "soc" group);
* :mod:`~repro.graph.generators.web` — host-structured copying model
  (the "web" group);
* :mod:`~repro.graph.generators.road` — grids with deletions/shortcuts
  (the high-diameter hard case).
"""

from .rmat import MERRILL_RMAT, PAPER_RMAT, RmatParams, generate_rmat, rmat_coo
from .road import generate_road, road_coo
from .social import generate_social, social_coo
from .web import generate_web, web_coo

__all__ = [
    "RmatParams",
    "PAPER_RMAT",
    "MERRILL_RMAT",
    "generate_rmat",
    "rmat_coo",
    "generate_road",
    "road_coo",
    "generate_social",
    "social_coo",
    "generate_web",
    "web_coo",
]
