"""Road-network-like graph generator.

Road networks are the paper's canonical *hard* case (Sections V-B, VII-A):
high diameter, low and nearly-uniform degree, so each BFS iteration has too
little work to fill even one GPU and per-iteration overhead dominates —
multi-GPU runs get *slower*.  We reproduce that structure with a 2-D grid
augmented by a small fraction of random "highway" shortcuts and random edge
deletions, which preserves:

* average degree ~ 2-3 (real road networks: ~2.5),
* diameter Theta(sqrt(|V|)),
* near-uniform degree distribution (no hubs).
"""

from __future__ import annotations

import numpy as np

from ...types import ID32, IdConfig
from ..coo import CooGraph

__all__ = ["road_coo", "generate_road"]


def road_coo(
    width: int,
    height: int,
    delete_fraction: float = 0.1,
    shortcut_fraction: float = 0.005,
    seed: int = 7,
    ids: IdConfig = ID32,
) -> CooGraph:
    """Generate a width x height grid with deletions and rare shortcuts.

    Vertex (x, y) has ID ``y * width + x``.  ``delete_fraction`` of grid
    edges are removed (dead ends / rivers); ``shortcut_fraction * |V|``
    random long-range edges are added (highways).
    """
    if width < 1 or height < 1:
        raise ValueError("grid dimensions must be positive")
    n = width * height
    rng = np.random.default_rng(seed)

    xs, ys = np.meshgrid(np.arange(width), np.arange(height))
    vid = (ys * width + xs).ravel()
    right = vid[(xs < width - 1).ravel()]
    down = vid[(ys < height - 1).ravel()]
    src = np.concatenate([right, down])
    dst = np.concatenate([right + 1, down + width])

    if delete_fraction > 0:
        keep = rng.random(src.size) >= delete_fraction
        src, dst = src[keep], dst[keep]

    n_short = int(shortcut_fraction * n)
    if n_short > 0:
        s = rng.integers(0, n, size=n_short)
        d = rng.integers(0, n, size=n_short)
        src = np.concatenate([src, s])
        dst = np.concatenate([dst, d])

    return CooGraph(n, src, dst, ids=ids, directed=True)


def generate_road(
    width: int,
    height: int,
    delete_fraction: float = 0.1,
    shortcut_fraction: float = 0.005,
    seed: int = 7,
    ids: IdConfig = ID32,
):
    """Cleaned undirected CSR road network."""
    from ..build import build_csr

    coo = road_coo(
        width,
        height,
        delete_fraction=delete_fraction,
        shortcut_fraction=shortcut_fraction,
        seed=seed,
        ids=ids,
    )
    return build_csr(coo, undirected=True)
