"""Social-network-like generator (Chung-Lu model).

Stand-in for the paper's "soc" dataset group (soc-LiveJournal1, hollywood,
soc-orkut, soc-sinaweibo, soc-twitter-2010): power-law degree distribution,
very low diameter (5-15), a giant connected component.  The Chung-Lu model
draws each edge endpoint proportionally to a target weight sequence
``w_v ~ (v+1)^(-1/(gamma-1))``, giving a power-law expected degree sequence
with exponent ``gamma`` without any recursive structure, so the family is
distinguishable from R-MAT (which has strong degree correlations).
"""

from __future__ import annotations

import numpy as np

from ...types import ID32, IdConfig
from ..coo import CooGraph

__all__ = ["social_coo", "generate_social"]


def social_coo(
    num_vertices: int,
    edge_factor: int,
    gamma: float = 2.2,
    seed: int = 3,
    ids: IdConfig = ID32,
) -> CooGraph:
    """Chung-Lu edge list with power-law exponent ``gamma``.

    ``edge_factor * num_vertices`` endpoint pairs are sampled; cleanup
    (dedup, symmetrize) happens in :func:`generate_social`.
    """
    if num_vertices < 1:
        raise ValueError("num_vertices must be positive")
    if gamma <= 1.0:
        raise ValueError("gamma must exceed 1")
    rng = np.random.default_rng(seed)
    m = num_vertices * edge_factor
    # Target weights: Zipf-like, heaviest at vertex 0.
    w = (np.arange(1, num_vertices + 1, dtype=np.float64)) ** (
        -1.0 / (gamma - 1.0)
    )
    p = w / w.sum()
    src = rng.choice(num_vertices, size=m, p=p)
    dst = rng.choice(num_vertices, size=m, p=p)
    return CooGraph(num_vertices, src, dst, ids=ids, directed=True)


def generate_social(
    num_vertices: int,
    edge_factor: int,
    gamma: float = 2.2,
    seed: int = 3,
    ids: IdConfig = ID32,
):
    """Cleaned undirected CSR social-network stand-in."""
    from ..build import build_csr

    coo = social_coo(
        num_vertices, edge_factor, gamma=gamma, seed=seed, ids=ids
    )
    return build_csr(coo, undirected=True)
