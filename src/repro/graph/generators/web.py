"""Web-crawl-like generator (preferential copying with host locality).

Stand-in for the paper's "web" dataset group (indochina-2004, uk-2002,
arabic-2005, uk-2005, webbase-2001).  Web crawls differ from social graphs
in two ways the paper's results depend on:

* higher diameter (23-28 vs 5-15) — traversals run more iterations;
* strong *locality*: pages link mostly within their own host, so partition
  borders are relatively smaller and locality-seeking partitioners have
  something to find.

We reproduce both with a host-structured copying model: vertices are
grouped into contiguous "hosts" (geometric sizes); each vertex links mostly
inside its host (preferentially to low-numbered "index pages") plus a few
cross-host links, and hosts are chained so the inter-host structure has
nontrivial diameter.
"""

from __future__ import annotations

import numpy as np

from ...types import ID32, IdConfig
from ..coo import CooGraph

__all__ = ["web_coo", "generate_web"]


def web_coo(
    num_vertices: int,
    edge_factor: int = 16,
    mean_host_size: int = 64,
    intra_fraction: float = 0.85,
    seed: int = 11,
    ids: IdConfig = ID32,
) -> CooGraph:
    """Host-structured web-crawl edge list.

    Parameters
    ----------
    num_vertices, edge_factor:
        ``edge_factor * num_vertices`` links are sampled.
    mean_host_size:
        Expected pages per host (hosts are contiguous ID ranges).
    intra_fraction:
        Probability a link stays within the source page's host.
    """
    if num_vertices < 1:
        raise ValueError("num_vertices must be positive")
    rng = np.random.default_rng(seed)
    # Host boundaries: geometric sizes, contiguous vertex ranges.
    sizes = rng.geometric(1.0 / mean_host_size, size=max(4, 2 * num_vertices // mean_host_size))
    bounds = np.concatenate([[0], np.cumsum(sizes)])
    bounds = bounds[bounds < num_vertices]
    bounds = np.append(bounds, num_vertices)
    host_start = bounds[:-1]
    host_end = bounds[1:]
    num_hosts = host_start.size
    # host of each vertex
    host_of = np.searchsorted(bounds, np.arange(num_vertices), side="right") - 1

    m = num_vertices * edge_factor
    src = rng.integers(0, num_vertices, size=m)
    s_host = host_of[src]
    intra = rng.random(m) < intra_fraction

    # Intra-host targets: biased toward the host's first pages (index pages)
    # via a squared-uniform draw -> ~1/sqrt(x) density.
    span = (host_end - host_start)[s_host]
    offs = np.floor((rng.random(m) ** 2) * span).astype(np.int64)
    intra_dst = host_start[s_host] + offs

    # Inter-host targets: neighbor host in a ring (locality between hosts)
    # half the time, a uniformly random host otherwise; land on its index page
    # region.
    step = rng.integers(1, 4, size=m)
    neighbor = (s_host + step) % max(num_hosts, 1)
    random_host = rng.integers(0, max(num_hosts, 1), size=m)
    use_neighbor = rng.random(m) < 0.5
    t_host = np.where(use_neighbor, neighbor, random_host)
    t_span = host_end[t_host] - host_start[t_host]
    t_offs = np.floor((rng.random(m) ** 2) * t_span).astype(np.int64)
    inter_dst = host_start[t_host] + t_offs

    dst = np.where(intra, intra_dst, inter_dst)
    return CooGraph(num_vertices, src, dst, ids=ids, directed=True)


def generate_web(
    num_vertices: int,
    edge_factor: int = 16,
    mean_host_size: int = 64,
    intra_fraction: float = 0.85,
    seed: int = 11,
    ids: IdConfig = ID32,
):
    """Cleaned undirected CSR web-crawl stand-in."""
    from ..build import build_csr

    coo = web_coo(
        num_vertices,
        edge_factor=edge_factor,
        mean_host_size=mean_host_size,
        intra_fraction=intra_fraction,
        seed=seed,
        ids=ids,
    )
    return build_csr(coo, undirected=True)
