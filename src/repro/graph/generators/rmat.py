"""R-MAT graph generator faithful to GTgraph.

The paper implements "a GPU-based R-MAT graph generator faithful to
GTgraph" with parameters {A, B, C, D} = {0.57, 0.19, 0.19, 0.05}, and for
the B40C comparison Merrill's parameters {0.45, 0.15, 0.15, 0.25}.  This
module reproduces the GTgraph sampling procedure in vectorized NumPy:

* each edge independently descends ``scale`` levels of the 2^scale x
  2^scale adjacency matrix, choosing a quadrant per level;
* like GTgraph, the quadrant probabilities are perturbed by up to +/-10%
  noise at every level (and renormalized) to avoid exact self-similarity.

Dataset names such as ``rmat_n20_512`` follow the paper: 2^20 vertices and
edge factor 512 (|E| = 512 * |V| before cleanup).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...types import ID32, IdConfig
from ..coo import CooGraph

__all__ = ["RmatParams", "PAPER_RMAT", "MERRILL_RMAT", "generate_rmat", "rmat_coo"]


@dataclass(frozen=True)
class RmatParams:
    """Quadrant probabilities of the recursive matrix model."""

    a: float = 0.57
    b: float = 0.19
    c: float = 0.19
    d: float = 0.05

    def __post_init__(self) -> None:
        total = self.a + self.b + self.c + self.d
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"R-MAT parameters must sum to 1, got {total}")
        if min(self.a, self.b, self.c, self.d) < 0:
            raise ValueError("R-MAT parameters must be non-negative")


#: Parameters used throughout the paper ({0.57, 0.19, 0.19, 0.05}).
PAPER_RMAT = RmatParams(0.57, 0.19, 0.19, 0.05)

#: Merrill's parameters, used only for the B40C comparison (Table III).
MERRILL_RMAT = RmatParams(0.45, 0.15, 0.15, 0.25)


def rmat_coo(
    scale: int,
    edge_factor: int,
    params: RmatParams = PAPER_RMAT,
    seed: int = 1,
    ids: IdConfig = ID32,
    noise: float = 0.1,
) -> CooGraph:
    """Generate a directed R-MAT edge list with ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        log2 of the vertex count.
    edge_factor:
        Edges generated per vertex (before dedup/self-loop removal).
    params:
        Quadrant probabilities.
    seed:
        RNG seed; generation is deterministic given (scale, edge_factor,
        params, seed, noise).
    noise:
        GTgraph-style multiplicative perturbation amplitude applied to the
        quadrant probabilities at each level.
    """
    if scale < 0:
        raise ValueError("scale must be non-negative")
    n = 1 << scale
    m = n * edge_factor
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # Descend the recursive quadrants one level at a time; all edges advance
    # a level together so everything is vectorized over the m edges.
    for _level in range(scale):
        if noise > 0.0:
            # GTgraph perturbs {a,b,c,d} by up to +/-noise per level.
            perturb = 1.0 + noise * (2.0 * rng.random(4) - 1.0)
            p = np.array([params.a, params.b, params.c, params.d]) * perturb
            p /= p.sum()
        else:
            p = np.array([params.a, params.b, params.c, params.d])
        r = rng.random(m)
        # quadrant: 0 = top-left (a), 1 = top-right (b),
        #           2 = bottom-left (c), 3 = bottom-right (d)
        q = np.searchsorted(np.cumsum(p)[:3], r, side="right")
        src = (src << 1) | (q >> 1)
        dst = (dst << 1) | (q & 1)
    return CooGraph(n, src, dst, ids=ids, directed=True)


def generate_rmat(
    scale: int,
    edge_factor: int,
    params: RmatParams = PAPER_RMAT,
    seed: int = 1,
    ids: IdConfig = ID32,
    undirected: bool = True,
):
    """Generate a cleaned CSR R-MAT graph (undirected by default).

    This is the generator behind the ``rmat_*`` entries in the paper's
    Table II and the weak/strong scaling workloads of Fig. 5.
    """
    from ..build import build_csr

    coo = rmat_coo(scale, edge_factor, params=params, seed=seed, ids=ids)
    return build_csr(coo, undirected=undirected)
