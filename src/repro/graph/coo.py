"""Edge-list (COO) graph container and cleanup passes.

The paper's dataset preparation (Section VII-A) converts all graphs to
undirected form and removes self-loops and duplicate edges before
partitioning.  :class:`CooGraph` holds the raw edge list and implements those
passes as vectorized NumPy operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import GraphFormatError
from ..types import ID32, IdConfig

__all__ = ["CooGraph"]


@dataclass
class CooGraph:
    """A graph as parallel source/destination (and optional value) arrays.

    Parameters
    ----------
    num_vertices:
        Number of vertices; all IDs must lie in ``[0, num_vertices)``.
    src, dst:
        Edge endpoint arrays, same length.
    values:
        Optional per-edge values (e.g. SSSP weights), same length as ``src``.
    ids:
        The :class:`~repro.types.IdConfig` controlling dtypes.
    directed:
        Whether the edge list represents a directed graph.  Undirected graphs
        store both (u, v) and (v, u) after :meth:`to_undirected`.
    """

    num_vertices: int
    src: np.ndarray
    dst: np.ndarray
    values: Optional[np.ndarray] = None
    ids: IdConfig = field(default=ID32)
    directed: bool = True

    def __post_init__(self) -> None:
        self.src = np.asarray(self.src, dtype=self.ids.vertex_dtype)
        self.dst = np.asarray(self.dst, dtype=self.ids.vertex_dtype)
        if self.src.ndim != 1 or self.dst.ndim != 1:
            raise GraphFormatError("src/dst must be 1-D arrays")
        if self.src.shape != self.dst.shape:
            raise GraphFormatError(
                f"src and dst lengths differ: {self.src.size} vs {self.dst.size}"
            )
        if self.values is not None:
            self.values = np.asarray(self.values, dtype=self.ids.value_dtype)
            if self.values.shape != self.src.shape:
                raise GraphFormatError("values length must match edge count")
        if self.num_vertices < 0:
            raise GraphFormatError("num_vertices must be non-negative")
        if self.src.size:
            lo = min(int(self.src.min()), int(self.dst.min()))
            hi = max(int(self.src.max()), int(self.dst.max()))
            if lo < 0 or hi >= self.num_vertices:
                raise GraphFormatError(
                    f"edge endpoint out of range [0, {self.num_vertices}): "
                    f"saw [{lo}, {hi}]"
                )

    @property
    def num_edges(self) -> int:
        """Number of stored edges (each direction counts once)."""
        return int(self.src.size)

    def remove_self_loops(self) -> "CooGraph":
        """Return a copy with all (v, v) edges dropped."""
        keep = self.src != self.dst
        return CooGraph(
            self.num_vertices,
            self.src[keep],
            self.dst[keep],
            None if self.values is None else self.values[keep],
            ids=self.ids,
            directed=self.directed,
        )

    def remove_duplicates(self) -> "CooGraph":
        """Return a copy with duplicate (src, dst) pairs removed.

        The first occurrence's value is kept, matching the paper's dataset
        cleanup (duplicated edges are removed, Section VII-A).
        """
        order = np.lexsort((self.dst, self.src))
        s, d = self.src[order], self.dst[order]
        if s.size == 0:
            return self.copy()
        first = np.ones(s.size, dtype=bool)
        first[1:] = (s[1:] != s[:-1]) | (d[1:] != d[:-1])
        keep = order[first]
        keep.sort()  # preserve original relative order of survivors
        return CooGraph(
            self.num_vertices,
            self.src[keep],
            self.dst[keep],
            None if self.values is None else self.values[keep],
            ids=self.ids,
            directed=self.directed,
        )

    def to_undirected(self) -> "CooGraph":
        """Symmetrize: add the reverse of every edge, then dedup.

        Self-loops are removed first so that symmetrization cannot
        double-count them.
        """
        g = self.remove_self_loops()
        src = np.concatenate([g.src, g.dst])
        dst = np.concatenate([g.dst, g.src])
        values = None
        if g.values is not None:
            values = np.concatenate([g.values, g.values])
        out = CooGraph(
            g.num_vertices, src, dst, values, ids=g.ids, directed=False
        )
        return out.remove_duplicates()

    def reverse(self) -> "CooGraph":
        """Return the graph with every edge direction flipped."""
        return CooGraph(
            self.num_vertices,
            self.dst.copy(),
            self.src.copy(),
            None if self.values is None else self.values.copy(),
            ids=self.ids,
            directed=self.directed,
        )

    def with_values(self, values: np.ndarray) -> "CooGraph":
        """Return a copy carrying the given per-edge values."""
        return CooGraph(
            self.num_vertices,
            self.src.copy(),
            self.dst.copy(),
            np.asarray(values, dtype=self.ids.value_dtype).copy(),
            ids=self.ids,
            directed=self.directed,
        )

    def copy(self) -> "CooGraph":
        return CooGraph(
            self.num_vertices,
            self.src.copy(),
            self.dst.copy(),
            None if self.values is None else self.values.copy(),
            ids=self.ids,
            directed=self.directed,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "directed" if self.directed else "undirected"
        return (
            f"CooGraph({kind}, |V|={self.num_vertices}, |E|={self.num_edges})"
        )
