"""Graph I/O: edge-list and MatrixMarket-style readers and writers.

The paper's real datasets come from the UF sparse matrix collection
(MatrixMarket files) and SNAP-style edge lists.  These readers let users
load their own graphs into the framework; the test suite uses them for
round-trip checks.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..errors import GraphFormatError
from ..types import ID32, IdConfig
from .coo import CooGraph
from .csr import CsrGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_matrix_market",
    "write_matrix_market",
]

PathLike = Union[str, Path, _io.IOBase]


def _open_read(path: PathLike):
    if isinstance(path, _io.IOBase):
        return path, False
    return open(path, "r"), True


def _open_write(path: PathLike):
    if isinstance(path, _io.IOBase):
        return path, False
    return open(path, "w"), True


def read_edge_list(
    path: PathLike,
    num_vertices: Optional[int] = None,
    ids: IdConfig = ID32,
    comment: str = "#",
    weighted: bool = False,
) -> CooGraph:
    """Read a SNAP-style whitespace-separated edge list.

    Lines beginning with ``comment`` are skipped.  If ``num_vertices`` is
    omitted it is inferred as ``max_id + 1``.
    """
    fh, close = _open_read(path)
    try:
        srcs, dsts, vals = [], [], []
        for line in fh:
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(f"bad edge line: {line!r}")
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            if weighted:
                if len(parts) < 3:
                    raise GraphFormatError(
                        f"weighted=True but no weight on line: {line!r}"
                    )
                vals.append(float(parts[2]))
    finally:
        if close:
            fh.close()
    src = np.asarray(srcs, dtype=np.int64)
    dst = np.asarray(dsts, dtype=np.int64)
    if num_vertices is None:
        num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
    values = np.asarray(vals) if weighted else None
    return CooGraph(num_vertices, src, dst, values=values, ids=ids)


def write_edge_list(graph: Union[CooGraph, CsrGraph], path: PathLike) -> None:
    """Write a graph as a whitespace-separated edge list."""
    coo = graph.to_coo() if isinstance(graph, CsrGraph) else graph
    fh, close = _open_write(path)
    try:
        fh.write(f"# repro edge list |V|={coo.num_vertices} |E|={coo.num_edges}\n")
        if coo.values is None:
            for u, v in zip(coo.src.tolist(), coo.dst.tolist()):
                fh.write(f"{u} {v}\n")
        else:
            for u, v, w in zip(
                coo.src.tolist(), coo.dst.tolist(), coo.values.tolist()
            ):
                fh.write(f"{u} {v} {w}\n")
    finally:
        if close:
            fh.close()


def read_matrix_market(path: PathLike, ids: IdConfig = ID32) -> CooGraph:
    """Read a (subset of) MatrixMarket coordinate file as a graph.

    Supports ``matrix coordinate {pattern|real|integer} {general|symmetric}``.
    Symmetric matrices are expanded to both directions; the matrix must be
    square.  IDs are converted from MatrixMarket's 1-based to 0-based.
    """
    fh, close = _open_read(path)
    try:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise GraphFormatError("missing %%MatrixMarket header")
        tokens = header.strip().split()
        if len(tokens) < 5 or tokens[1] != "matrix" or tokens[2] != "coordinate":
            raise GraphFormatError(f"unsupported MatrixMarket header: {header!r}")
        field, symmetry = tokens[3], tokens[4]
        if field not in ("pattern", "real", "integer"):
            raise GraphFormatError(f"unsupported field type: {field}")
        if symmetry not in ("general", "symmetric"):
            raise GraphFormatError(f"unsupported symmetry: {symmetry}")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        rows, cols, _nnz = (int(x) for x in line.split())
        if rows != cols:
            raise GraphFormatError(
                f"adjacency matrix must be square, got {rows}x{cols}"
            )
        srcs, dsts, vals = [], [], []
        for line in fh:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            parts = line.split()
            srcs.append(int(parts[0]) - 1)
            dsts.append(int(parts[1]) - 1)
            if field != "pattern":
                vals.append(float(parts[2]) if len(parts) > 2 else 1.0)
    finally:
        if close:
            fh.close()
    src = np.asarray(srcs, dtype=np.int64)
    dst = np.asarray(dsts, dtype=np.int64)
    values = None if field == "pattern" else np.asarray(vals)
    if symmetry == "symmetric":
        off = src != dst
        src2 = np.concatenate([src, dst[off]])
        dst2 = np.concatenate([dst, src[off]])
        if values is not None:
            values = np.concatenate([values, values[off]])
        src, dst = src2, dst2
    return CooGraph(rows, src, dst, values=values, ids=ids)


def write_matrix_market(graph: Union[CooGraph, CsrGraph], path: PathLike) -> None:
    """Write a graph as a general coordinate MatrixMarket file."""
    coo = graph.to_coo() if isinstance(graph, CsrGraph) else graph
    field = "pattern" if coo.values is None else "real"
    fh, close = _open_write(path)
    try:
        fh.write(f"%%MatrixMarket matrix coordinate {field} general\n")
        fh.write(f"{coo.num_vertices} {coo.num_vertices} {coo.num_edges}\n")
        if coo.values is None:
            for u, v in zip(coo.src.tolist(), coo.dst.tolist()):
                fh.write(f"{u + 1} {v + 1}\n")
        else:
            for u, v, w in zip(
                coo.src.tolist(), coo.dst.tolist(), coo.values.tolist()
            ):
                fh.write(f"{u + 1} {v + 1} {w}\n")
    finally:
        if close:
            fh.close()
