"""Graph property measurement: degrees, diameter, components.

The paper reports the diameter ``D`` of each dataset (Table II) and its
BSP analysis ties iteration counts to D (S ~ D/2 for traversal
primitives).  For rmat graphs the paper approximates D "by multiple run of
random-sourced BFS"; :func:`approximate_diameter` reproduces that
procedure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CsrGraph

__all__ = [
    "bfs_levels",
    "approximate_diameter",
    "largest_component_fraction",
    "DegreeStats",
    "degree_stats",
]


def bfs_levels(graph: CsrGraph, source: int) -> np.ndarray:
    """Serial reference BFS; returns the level array (-1 = unreached).

    Level-synchronous and fully vectorized per level: the frontier's
    adjacency lists are gathered with ``np.repeat`` arithmetic rather than a
    Python loop over vertices.
    """
    n = graph.num_vertices
    levels = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return levels
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    offsets = graph.row_offsets.astype(np.int64)
    cols = graph.col_indices
    while frontier.size:
        starts = offsets[frontier]
        ends = offsets[frontier + 1]
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Gather all neighbor indices of the frontier in one shot.
        idx = np.repeat(starts + counts - counts.cumsum(), counts) + np.arange(total)
        # The expression above computes, for each expanded slot, its offset
        # within col_indices: repeat(starts - exclusive_prefix(counts)) + arange.
        neighbors = cols[idx]
        unvisited = neighbors[levels[neighbors] == -1]
        if unvisited.size == 0:
            break
        frontier = np.unique(unvisited)
        depth += 1
        levels[frontier] = depth
    return levels


def approximate_diameter(
    graph: CsrGraph, num_sources: int = 8, seed: int = 0
) -> int:
    """Approximate diameter via BFS from random sources (paper Table II).

    Returns the maximum eccentricity observed over ``num_sources`` random
    sources (restricted to reached vertices).  A lower bound on the true
    diameter, exactly as the paper's asterisked values are.
    """
    n = graph.num_vertices
    if n == 0:
        return 0
    rng = np.random.default_rng(seed)
    best = 0
    for _ in range(num_sources):
        src = int(rng.integers(0, n))
        levels = bfs_levels(graph, src)
        reached = levels[levels >= 0]
        if reached.size:
            best = max(best, int(reached.max()))
    return best


def largest_component_fraction(graph: CsrGraph, seed: int = 0) -> float:
    """Fraction of vertices in the component of a random high-degree vertex.

    Cheap sanity check that generated graphs have a giant component, as the
    paper's datasets do.
    """
    n = graph.num_vertices
    if n == 0:
        return 0.0
    deg = graph.out_degree()
    src = int(np.argmax(deg))
    levels = bfs_levels(graph, src)
    return float((levels >= 0).sum()) / n


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a degree distribution."""

    mean: float
    maximum: int
    p99: float
    gini: float

    @property
    def is_power_law_like(self) -> bool:
        """Heuristic: hubs far above average and high inequality."""
        return self.maximum > 10 * self.mean and self.gini > 0.4


def degree_stats(graph: CsrGraph) -> DegreeStats:
    """Compute degree statistics used to validate generator families."""
    deg = graph.out_degree().astype(np.float64)
    if deg.size == 0:
        return DegreeStats(0.0, 0, 0.0, 0.0)
    sorted_deg = np.sort(deg)
    cum = np.cumsum(sorted_deg)
    total = cum[-1]
    if total == 0:
        gini = 0.0
    else:
        # Gini coefficient of the degree distribution.
        n = deg.size
        gini = float((n + 1 - 2 * (cum / total).sum()) / n)
    return DegreeStats(
        mean=float(deg.mean()),
        maximum=int(deg.max()),
        p99=float(np.percentile(deg, 99)),
        gini=gini,
    )
