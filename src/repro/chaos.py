"""Seeded chaos harness: fault plans x primitives x machines.

The robustness acceptance gate (``docs/robustness.md``): every primitive
must survive each fault kind and produce results equal to a fault-free
reference run of the same configuration.  The harness is fully seeded —
graph generation, fault plans, and the virtual machine are all
deterministic, so a failing cell reproduces exactly from its name.

Fault kinds exercised per cell:

``transient-comm``
    Every GPU's outgoing link fails twice starting at superstep 0; the
    enactor's capped-backoff retry loop must absorb all of them.
``oom``
    Every GPU's next allocation fails once; the enactor regrows the
    buffer with an exact-fit allocation.  Armed together with a
    deliberately undersized allocation scheme so frontier growth
    actually allocates during supersteps.
``gpu-loss``
    The highest-numbered GPU dies permanently at superstep 1; the
    enactor rolls every survivor back to the last barrier checkpoint,
    repartitions the lost subgraph onto the survivors, and resumes
    degraded.

The three *host-level* kinds strike real OS worker processes, so their
cells always run the ``processes`` backend with supervision enabled
(``Enactor(supervise=True)``, docs/robustness.md):

``worker-crash``
    One worker is SIGKILL'd at superstep 1 (respawn + replay must
    complete bit-identically) and another is SIGKILL'd twice in the
    same superstep (escalates to the rollback path and degrades onto
    the survivors) — both escalation tiers in one cell.
``worker-hang``
    A worker is SIGSTOPped at superstep 1; the supervisor detects the
    stale heartbeat, kills + respawns it, and replays the superstep.
``shm-corrupt``
    A byte is flipped in a non-owner shared-memory window; the
    per-barrier checksum catches it and escalates to rollback.

Use :func:`run_chaos_matrix` programmatically or
``python -m repro chaos`` from the command line.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .graph.build import add_random_weights
from .graph.generators import generate_rmat
from .primitives import RUNNERS
from .sim.faults import (
    GPU_LOSS,
    OOM,
    SHM_CORRUPT,
    TRANSIENT_COMM,
    WORKER_CRASH,
    WORKER_HANG,
    FaultPlan,
    FaultSpec,
)
from .sim.machine import Machine
from .sim.memory import FixedPrealloc, JustEnough

__all__ = [
    "CHAOS_KINDS",
    "HOST_CHAOS_KINDS",
    "ALL_CHAOS_KINDS",
    "CHAOS_PRIMITIVES",
    "ChaosResult",
    "build_chaos_plan",
    "run_chaos_case",
    "run_chaos_matrix",
]

CHAOS_PRIMITIVES = ("bfs", "dobfs", "sssp", "cc", "bc", "pr")
CHAOS_KINDS = (TRANSIENT_COMM, OOM, GPU_LOSS)
#: real-process cells: forced onto the processes backend + supervision
HOST_CHAOS_KINDS = (WORKER_CRASH, WORKER_HANG, SHM_CORRUPT)
ALL_CHAOS_KINDS = CHAOS_KINDS + HOST_CHAOS_KINDS

#: primitives whose recovered output must be bit-exact; the float-valued
#: primitives (PR ranks, BC centrality) compare with allclose because a
#: rollback legitimately reorders float accumulations
EXACT_PRIMITIVES = frozenset({"bfs", "dobfs", "sssp", "cc"})


def build_chaos_plan(kind: str, num_gpus: int) -> Tuple[FaultPlan, dict]:
    """The canonical fault plan for one chaos cell.

    Returns ``(plan, extra_enactor_kwargs)``; the kwargs carry whatever
    the recovery path additionally needs (checkpointing for GPU loss).
    """
    if kind == TRANSIENT_COMM:
        # two consecutive link failures out of every GPU, from the start
        plan = FaultPlan(
            [
                FaultSpec(TRANSIENT_COMM, gpu=g, iteration=0, count=2)
                for g in range(num_gpus)
            ]
        )
        return plan, {}
    if kind == OOM:
        plan = FaultPlan(
            [FaultSpec(OOM, gpu=g, iteration=0) for g in range(num_gpus)]
        )
        return plan, {}
    if kind == GPU_LOSS:
        # superstep 1, not 0: CC can converge in two supersteps and the
        # loss must land while the run is still in flight
        plan = FaultPlan(
            [FaultSpec(GPU_LOSS, gpu=num_gpus - 1, iteration=1)]
        )
        return plan, {"checkpoint_every": 2}
    if kind == WORKER_CRASH:
        # one single SIGKILL (respawn + replay, bit-identical) and one
        # double SIGKILL in the same superstep (escalates to rollback):
        # the injector consumes at most one host spec per GPU per take,
        # so the duplicate spec strikes the freshly respawned worker
        plan = FaultPlan(
            [
                FaultSpec(WORKER_CRASH, gpu=0, iteration=1),
                FaultSpec(WORKER_CRASH, gpu=num_gpus - 1, iteration=1),
                FaultSpec(WORKER_CRASH, gpu=num_gpus - 1, iteration=1),
            ]
        )
        return plan, dict(_supervised_extra(), checkpoint_every=2)
    if kind == WORKER_HANG:
        plan = FaultPlan(
            [FaultSpec(WORKER_HANG, gpu=num_gpus - 1, iteration=1)]
        )
        return plan, _supervised_extra()
    if kind == SHM_CORRUPT:
        plan = FaultPlan(
            [FaultSpec(SHM_CORRUPT, gpu=num_gpus - 1, iteration=1)]
        )
        return plan, dict(_supervised_extra(), checkpoint_every=2)
    raise ValueError(
        f"unknown chaos kind {kind!r}; expected {ALL_CHAOS_KINDS}"
    )


def _supervised_extra() -> dict:
    """Enactor kwargs for the real-process cells: supervision with
    detection tuned fast so SIGSTOP hangs surface in well under a
    second instead of the production-grade default thresholds."""
    from .core.supervise import SupervisionConfig

    return {
        "supervise": True,
        "supervision": SupervisionConfig(
            heartbeat_interval=0.02,
            stale_factor=15.0,
            deadline_floor=5.0,
            poll_interval=0.02,
        ),
    }


def _chaos_scheme(primitive: str, kind: str):
    """Allocation scheme for a chaos cell.

    The OOM cells need a scheme that undersizes frontiers so growth
    actually reallocates during supersteps (the preallocating schemes
    never allocate after setup, which would leave the armed fault
    pending forever).
    """
    if kind == OOM:
        return JustEnough(slack=0.05)
    if primitive in ("cc", "pr"):
        return FixedPrealloc(frontier_factor=1.05)
    return None


@dataclass
class ChaosResult:
    """Outcome of one chaos cell (or a matrix of them)."""

    primitive: str
    num_gpus: int
    kind: str
    backend: str
    ok: bool
    detail: str = ""
    #: recovery counters copied off the faulted run's metrics
    recovery: Dict[str, object] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return (
            f"{self.primitive}/gpus={self.num_gpus}/{self.kind}"
            f"/{self.backend}"
        )


def _build_inputs(rmat_scale: int, edge_factor: int, seed: int):
    graph = generate_rmat(rmat_scale, edge_factor, seed=seed)
    weighted = add_random_weights(graph, 1, 64, seed=2)
    return graph, weighted


def run_chaos_case(
    primitive: str,
    num_gpus: int,
    kind: str,
    backend: str = "serial",
    rmat_scale: int = 7,
    edge_factor: int = 8,
    seed: int = 3,
    check_events: bool = True,
    dump_path: Optional[str] = None,
    _inputs=None,
) -> ChaosResult:
    """Run one chaos cell and compare against the fault-free reference.

    With ``check_events`` (the default) the faulted run is traced through
    an in-memory event bus and every recovery event count is asserted
    against the matching ``RunMetrics`` counter — retries, OOM regrows,
    rollbacks, and checkpoints must agree exactly, or the cell fails.

    Every faulted run carries a :class:`~repro.obs.recorder.FlightRecorder`
    (the always-on tier this harness exists to exercise): supervisor
    escalations dump a crash report mid-run, and a cell that *fails* —
    exception, wrong result, or counter mismatch — dumps one on the way
    out.  ``dump_path`` writes the latest dump there; the dump count is
    reported as ``recovery["flight_dumps"]``.
    """
    graph, weighted = _inputs or _build_inputs(rmat_scale, edge_factor, seed)
    runner = RUNNERS[primitive]
    if kind in HOST_CHAOS_KINDS:
        # host-level faults strike real worker processes: these cells
        # only exist on the processes backend (supervision is added to
        # the faulted run by build_chaos_plan's extra kwargs)
        backend = "processes"
    kwargs: dict = {"backend": backend}
    g = weighted if primitive == "sssp" else graph
    if primitive in ("bfs", "dobfs", "sssp", "bc"):
        kwargs["src"] = 0
    if primitive == "pr":
        kwargs["max_iter"] = 30
    scheme = _chaos_scheme(primitive, kind)
    if scheme is not None:
        kwargs["scheme"] = scheme

    ref, _, _ = runner(g, Machine(num_gpus), **kwargs)

    plan, extra = build_chaos_plan(kind, num_gpus)
    machine = Machine(num_gpus)
    machine.arm_faults(plan)
    tracer = None
    bus_records: List[dict] = []
    if check_events:
        from .obs import EventBus, Tracer

        bus = EventBus()
        bus.subscribe(bus_records.append)
        tracer = Tracer(bus=bus)
        extra = dict(extra, tracer=tracer)
    from .obs import FlightRecorder

    recorder = FlightRecorder(path=dump_path)
    extra = dict(extra, flight_recorder=recorder)
    try:
        out, metrics, _ = runner(g, machine, **kwargs, **extra)
    except Exception as exc:  # noqa: BLE001 - a cell reports, not raises
        if not recorder.dumps:
            # enact()'s own hook only covers ReproError; anything else
            # (or an error before enact) still deserves forensics
            recorder.dump("cell-exception", error=exc,
                          faults=machine.faults)
        return ChaosResult(
            primitive, num_gpus, kind, backend, ok=False,
            detail=f"{type(exc).__name__}: {exc}",
            recovery={"flight_dumps": len(recorder.dumps)},
        )

    if primitive in EXACT_PRIMITIVES:
        same = bool(np.array_equal(out, ref))
    else:
        same = bool(np.allclose(out, ref))
    recovery = {
        "comm_retries": metrics.comm_retries,
        "oom_recoveries": metrics.oom_recoveries,
        "rollbacks": metrics.rollbacks,
        "checkpoints_taken": metrics.checkpoints_taken,
        "degraded_gpus": list(metrics.degraded_gpus),
        "worker_respawns": metrics.worker_respawns,
        "supersteps_replayed": metrics.supersteps_replayed,
        "hang_detections": metrics.hang_detections,
        "injected": dict(machine.faults.injected),
    }
    recovered = {
        TRANSIENT_COMM: metrics.comm_retries > 0,
        OOM: metrics.oom_recoveries > 0,
        GPU_LOSS: metrics.rollbacks > 0,
        # both escalation tiers must fire: respawn (single kill) and
        # rollback (double kill on the same superstep)
        WORKER_CRASH: metrics.worker_respawns > 0 and metrics.rollbacks > 0,
        WORKER_HANG: (
            metrics.hang_detections > 0 and metrics.worker_respawns > 0
        ),
        SHM_CORRUPT: metrics.rollbacks > 0,
    }[kind]
    event_mismatch = ""
    if tracer is not None:
        counts = {
            t: sum(1 for r in bus_records if r.get("type") == t)
            for t in ("recovery.retry", "recovery.oom-regrow",
                      "recovery.rollback", "checkpoint",
                      "worker.respawn", "heartbeat.stale")
        }
        recovery["events"] = counts
        expected = {
            "recovery.retry": metrics.comm_retries,
            "recovery.oom-regrow": metrics.oom_recoveries,
            "recovery.rollback": metrics.rollbacks,
            "checkpoint": metrics.checkpoints_taken,
            "worker.respawn": metrics.worker_respawns,
            "heartbeat.stale": metrics.hang_detections,
        }
        bad = {
            t: (counts[t], want)
            for t, want in expected.items()
            if counts[t] != want
        }
        if bad:
            event_mismatch = (
                "recovery events disagree with RunMetrics counters: "
                + ", ".join(
                    f"{t} emitted {got} but counter says {want}"
                    for t, (got, want) in sorted(bad.items())
                )
            )
    if not same:
        detail = "result differs from fault-free reference"
    elif not recovered:
        detail = f"fault never fired (recovery counters: {recovery})"
    else:
        detail = event_mismatch
    ok = same and recovered and not event_mismatch
    if not ok:
        recorder.dump("cell-failure", faults=machine.faults,
                      detail=detail)
    recovery["flight_dumps"] = len(recorder.dumps)
    return ChaosResult(
        primitive, num_gpus, kind, backend,
        ok=ok, detail=detail, recovery=recovery,
    )


def run_chaos_matrix(
    primitives: Sequence[str] = CHAOS_PRIMITIVES,
    gpu_counts: Sequence[int] = (2, 4),
    kinds: Sequence[str] = CHAOS_KINDS,
    backends: Sequence[str] = ("serial", "threads"),
    rmat_scale: int = 7,
    edge_factor: int = 8,
    seed: int = 3,
    progress: Optional[Callable[[str], None]] = None,
    dump_dir: Optional[str] = None,
) -> List[ChaosResult]:
    """The full chaos matrix; returns one :class:`ChaosResult` per cell.

    ``dump_dir`` (optional) collects each cell's flight-recorder crash
    dump as ``<dir>/<primitive>-<gpus>-<kind>-<backend>.dump.json``;
    cells that never dump (clean recovery without escalation) leave no
    file.
    """
    inputs = _build_inputs(rmat_scale, edge_factor, seed)
    if dump_dir is not None:
        os.makedirs(dump_dir, exist_ok=True)
    results: List[ChaosResult] = []
    for primitive in primitives:
        for n in gpu_counts:
            for kind in kinds:
                # host-level cells exist only on the processes backend
                cell_backends = (
                    ("processes",) if kind in HOST_CHAOS_KINDS else backends
                )
                for backend in cell_backends:
                    dump_path = None
                    if dump_dir is not None:
                        dump_path = os.path.join(
                            dump_dir,
                            f"{primitive}-{n}-{kind}-{backend}.dump.json",
                        )
                    r = run_chaos_case(
                        primitive, n, kind, backend,
                        rmat_scale=rmat_scale, edge_factor=edge_factor,
                        seed=seed, dump_path=dump_path, _inputs=inputs,
                    )
                    results.append(r)
                    if progress is not None:
                        progress(
                            f"{'ok  ' if r.ok else 'FAIL'} {r.name}"
                            + (f" ({r.detail})" if r.detail else "")
                        )
    return results
