"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch framework errors without catching programming errors (``TypeError``
etc. are still raised for API misuse at the boundary).

Every :class:`ReproError` carries optional structured fault context —
``gpu_id``, ``iteration``, ``site`` — so a failure deep inside a superstep
is attributable (which GPU, which BSP iteration, which subsystem) without
a debugger.  Context is appended to ``str(exc)`` when present and is also
machine-readable via :attr:`ReproError.context`.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

__all__ = [
    "ReproError",
    "GraphFormatError",
    "PartitionError",
    "DeviceMemoryError",
    "DeviceLostError",
    "SimulationError",
    "ConvergenceError",
    "CommunicationError",
    "WorkerCrashError",
    "WorkerHangError",
    "ShmIntegrityError",
]


def _rebuild_error(cls, args, gpu_id, iteration, site):
    """Unpickle helper: reconstruct a :class:`ReproError` with context."""
    exc = cls(*args)
    exc.gpu_id = gpu_id
    exc.iteration = iteration
    exc.site = site
    return exc


class ReproError(Exception):
    """Base class for all library errors.

    Parameters
    ----------
    message:
        Human-readable description of the failure.
    gpu_id:
        Virtual GPU the failure is attributed to, if any.
    iteration:
        BSP superstep during which the failure occurred, if known.
    site:
        Subsystem/location tag, e.g. ``"interconnect.send[0->1]"`` or
        ``"memory.alloc[bfs#0.fin]"``.
    """

    def __init__(
        self,
        message: str = "",
        *args: object,
        gpu_id: Optional[int] = None,
        iteration: Optional[int] = None,
        site: Optional[str] = None,
    ):
        super().__init__(message, *args)
        self.gpu_id = gpu_id
        self.iteration = iteration
        self.site = site

    def __reduce__(self):
        # default Exception pickling replays only positional args, which
        # would drop the keyword-only context; the processes execution
        # backend ships these across worker pipes, so preserve it
        return (_rebuild_error, (
            type(self), self.args, self.gpu_id, self.iteration, self.site,
        ))

    @property
    def context(self) -> Dict[str, Union[int, str]]:
        """The non-empty structured context fields as a dict."""
        ctx: Dict[str, Union[int, str]] = {}
        if self.gpu_id is not None:
            ctx["gpu_id"] = self.gpu_id
        if self.iteration is not None:
            ctx["iteration"] = self.iteration
        if self.site is not None:
            ctx["site"] = self.site
        return ctx

    def __str__(self) -> str:
        base = super().__str__()
        parts = []
        if self.gpu_id is not None:
            parts.append(f"gpu={self.gpu_id}")
        if self.iteration is not None:
            parts.append(f"iteration={self.iteration}")
        if self.site is not None:
            parts.append(f"site={self.site}")
        if not parts:
            return base
        return f"{base} [{' '.join(parts)}]"


class GraphFormatError(ReproError):
    """Malformed graph input (bad CSR offsets, out-of-range vertex IDs...)."""


class PartitionError(ReproError):
    """Invalid partition (wrong table sizes, empty required partition...)."""


class DeviceMemoryError(ReproError):
    """A virtual GPU ran out of memory.

    Raised by :class:`repro.sim.memory.MemoryPool` when an allocation would
    exceed device capacity.  This is the simulated analogue of
    ``cudaErrorMemoryAllocation`` and is what the just-enough allocation
    scheme (paper Section VI-B) exists to avoid.
    """


class DeviceLostError(ReproError):
    """A virtual GPU was lost permanently (``cudaErrorDeviceUnavailable``).

    Unlike :class:`DeviceMemoryError` or a transient
    :class:`CommunicationError`, this is not retryable on the same device:
    recovery requires rolling back to a checkpoint and repartitioning the
    lost GPU's subgraph onto the survivors (see ``docs/robustness.md``).
    """


class SimulationError(ReproError):
    """Inconsistent simulator state (negative time, bad stream deps...)."""


class ConvergenceError(ReproError):
    """A primitive failed to converge within its iteration budget."""


class CommunicationError(ReproError):
    """Malformed inter-GPU message (size mismatch, unknown peer...)."""


class WorkerCrashError(ReproError):
    """A real worker process of the processes backend died.

    Detected by the supervision layer (pipe EOF, readable process
    sentinel, or a non-None ``Process.exitcode``) instead of blocking
    forever on an unbounded ``recv()``.  ``exitcode`` carries the OS
    exit status when known (negative = killed by that signal number,
    e.g. ``-9`` for SIGKILL).
    """

    def __init__(self, message: str = "", *args: object,
                 exitcode: Optional[int] = None, **kwargs):
        super().__init__(message, *args, **kwargs)
        self.exitcode = exitcode


class WorkerHangError(ReproError):
    """A worker process stopped making progress without dying.

    Raised when the worker's heartbeat goes stale (e.g. the process was
    SIGSTOPped or is wedged in a non-Python loop) or when a superstep
    exceeds its adaptive deadline (a multiple of the EWMA superstep
    wall time, with a floor).  ``stale`` distinguishes the two causes.
    """

    def __init__(self, message: str = "", *args: object,
                 stale: bool = False, **kwargs):
        super().__init__(message, *args, **kwargs)
        self.stale = stale


class ShmIntegrityError(ReproError):
    """A shared-memory slice window failed its per-barrier checksum.

    The owning worker checksums its GPU's slice arrays at superstep end
    and ships the digest in the effects sidecar; the parent recomputes
    from its own mapping at the barrier.  A mismatch means some other
    process scribbled on a window it does not own — the data cannot be
    trusted, so the supervisor escalates straight to the rollback path.
    """
