"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch framework errors without catching programming errors (``TypeError``
etc. are still raised for API misuse at the boundary).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "PartitionError",
    "DeviceMemoryError",
    "SimulationError",
    "ConvergenceError",
    "CommunicationError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class GraphFormatError(ReproError):
    """Malformed graph input (bad CSR offsets, out-of-range vertex IDs...)."""


class PartitionError(ReproError):
    """Invalid partition (wrong table sizes, empty required partition...)."""


class DeviceMemoryError(ReproError):
    """A virtual GPU ran out of memory.

    Raised by :class:`repro.sim.memory.MemoryPool` when an allocation would
    exceed device capacity.  This is the simulated analogue of
    ``cudaErrorMemoryAllocation`` and is what the just-enough allocation
    scheme (paper Section VI-B) exists to avoid.
    """


class SimulationError(ReproError):
    """Inconsistent simulator state (negative time, bad stream deps...)."""


class ConvergenceError(ReproError):
    """A primitive failed to converge within its iteration budget."""


class CommunicationError(ReproError):
    """Malformed inter-GPU message (size mismatch, unknown peer...)."""
