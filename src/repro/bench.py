"""Wall-clock benchmark harness for the execution backends.

The simulator's *virtual* times are backend-invariant by construction
(``repro.core.backend``); this module measures the *real* time the
simulation itself takes — the quantity the execution-backend layer and
the zero-copy operator work exist to improve.  It times ``enact()`` for
all six primitives at several GPU counts on fixed RMAT and road inputs,
under three configurations:

* ``serial`` — serial dispatch, workspace arenas on (the new default);
* ``threads`` — thread-pool dispatch, workspace arenas on;
* ``processes`` — forked worker pool with shared-memory slices
  (``repro.core.shm``); the only backend that escapes the GIL for the
  Python-level hook code, so the per-core scaling story lives here
  (``speedup_processes`` and ``efficiency_per_worker`` per case);
* ``serial_kernels`` — serial dispatch with the compiled hot-loop
  kernels enabled (``repro.core.kernels``); on hosts without Numba this
  times the NumPy fallback (~= ``serial``) and the recorded
  ``host.kernels.backend`` says which one ran;
* ``processes_supervised`` — the processes backend wrapped in the
  worker supervisor (``repro.core.supervise``): heartbeats, bounded
  waits, and crash/hang detection armed but no faults injected, so the
  per-case ``supervision_overhead`` ratio against plain ``processes``
  is the price of the safety net on the happy path (gated at 1.05x);
* ``serial_noworkspace`` — serial dispatch, workspace arenas off (the
  pre-optimization allocation-churn baseline);
* ``serial_traced`` — serial dispatch with a live ``obs.Tracer``
  attached, measuring the *enabled* cost of the observability layer
  (``overhead_traced`` per case).  The *disabled* cost is the plain
  ``serial`` variant itself: every untraced run already executes the
  ``tracer is None`` guards, so comparing ``serial`` against a baseline
  ``BENCH_2.json`` (``--baseline``) bounds it directly;
* ``processes_traced`` — the processes backend with a live tracer:
  workers stage their span records in the result payload and the parent
  adopts them, so tracing cost there includes the pickle/adopt path
  (``overhead_traced_processes``, gated like ``overhead_traced`` but
  with the 1-core skip the other processes gates use);
* ``serial_recorded`` — serial dispatch with an always-on
  ``obs.FlightRecorder`` attached (``overhead_recorded`` per case).
  The ring buffer is meant to fly on production runs, so its enabled
  cost is gated tight (1.05x untraced serial).

Every result records the host's CPU count prominently: both parallel
backends can only overlap supersteps across *cores*, so on a 1-core
host ``speedup_threads``/``speedup_processes`` ~ 1.0 is expected and
the CI regression gates for them report ``skipped: 1-core host`` —
explicitly, in the gate output and the JSON ``gates`` block — instead
of vacuously passing.  ``speedup_workspace`` and ``speedup_kernels``
measure per-operator wins and are host-parallelism independent.

Run it as ``python -m repro bench`` (see ``--help``); CI runs the
``--smoke`` variant.  Results are written as JSON (``BENCH_2.json`` at
the repo root is a committed reference run).
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from typing import Dict, List, Optional, Sequence

from .graph.build import add_random_weights
from .graph.generators import generate_rmat, generate_road
from .sim.machine import Machine

__all__ = ["run_bench", "BENCH_PRIMITIVES", "DEFAULT_GPU_COUNTS"]

BENCH_PRIMITIVES = ("bfs", "dobfs", "sssp", "cc", "bc", "pr")
DEFAULT_GPU_COUNTS = (1, 2, 4)

#: measurement variants: name -> Enactor kwargs (``traced``,
#: ``kernels`` and ``recorded`` are harness sentinels popped by
#: ``_time_variant``, not Enactor parameters).  Order matters: each
#: overhead ratio (recorded/serial, traced/serial, supervised/processes,
#: traced-processes/processes) compares variants measured back to back,
#: so slow host drift — CPU frequency, noisy CI neighbours — cancels
#: out of the tight 1.05x gates instead of masquerading as overhead.
_VARIANTS = {
    "serial": {"backend": "serial", "use_workspace": True},
    "serial_recorded": {"backend": "serial", "use_workspace": True,
                        "recorded": True},
    "serial_traced": {"backend": "serial", "use_workspace": True,
                      "traced": True},
    "serial_noworkspace": {"backend": "serial", "use_workspace": False},
    "serial_kernels": {"backend": "serial", "use_workspace": True,
                       "kernels": True},
    "threads": {"backend": "threads", "use_workspace": True},
    "processes": {"backend": "processes", "use_workspace": True},
    "processes_supervised": {"backend": "processes", "use_workspace": True,
                             "supervise": True},
    "processes_traced": {"backend": "processes", "use_workspace": True,
                         "traced": True},
}


def _build_graphs(rmat_scale: int, road_side: int) -> Dict[str, object]:
    rmat = generate_rmat(scale=rmat_scale, edge_factor=16, seed=1)
    road = generate_road(road_side, road_side, seed=7)
    return {"rmat": rmat, "road": road}


def _make_enactor(primitive: str, graph, machine, **enactor_kwargs):
    """Build (enactor, enact_kwargs) for one primitive, mirroring the
    construction choices of the ``run_*`` one-shots."""
    from .core.enactor import Enactor
    from .primitives import (
        BCIteration,
        BCProblem,
        BFSIteration,
        BFSProblem,
        CCIteration,
        CCProblem,
        DOBFSIteration,
        DOBFSProblem,
        PRIteration,
        PRProblem,
        SSSPIteration,
        SSSPProblem,
    )
    from .sim.memory import FixedPrealloc

    if primitive == "bfs":
        problem = BFSProblem(graph, machine)
        return Enactor(problem, BFSIteration, **enactor_kwargs), {"src": 0}
    if primitive == "dobfs":
        problem = DOBFSProblem(graph, machine)
        enactor_kwargs.setdefault("overlap_communication", True)
        return Enactor(problem, DOBFSIteration, **enactor_kwargs), {"src": 0}
    if primitive == "sssp":
        problem = SSSPProblem(graph, machine)
        return Enactor(problem, SSSPIteration, **enactor_kwargs), {"src": 0}
    if primitive == "cc":
        problem = CCProblem(graph, machine)
        return (
            Enactor(
                problem,
                CCIteration,
                scheme=FixedPrealloc(frontier_factor=1.05),
                **enactor_kwargs,
            ),
            {},
        )
    if primitive == "bc":
        problem = BCProblem(graph, machine)
        return Enactor(problem, BCIteration, **enactor_kwargs), {"src": 0}
    if primitive == "pr":
        problem = PRProblem(graph, machine, max_iter=60)
        return (
            Enactor(
                problem,
                PRIteration,
                scheme=FixedPrealloc(frontier_factor=1.05),
                **enactor_kwargs,
            ),
            {},
        )
    raise ValueError(f"unknown primitive {primitive!r}")


def _time_variant(
    primitive: str, graph, num_gpus: int, repeats: int, **enactor_kwargs
):
    """Median wall-clock ms of ``enact()`` (after one warmup run), plus
    the run's supersteps and the workspace arenas' counters."""
    machine = Machine(num_gpus)
    tracer = None
    if enactor_kwargs.pop("traced", False):
        from .obs import Tracer

        tracer = Tracer()
        enactor_kwargs["tracer"] = tracer
    recorder = None
    if enactor_kwargs.pop("recorded", False):
        from .obs import FlightRecorder

        recorder = FlightRecorder()
        enactor_kwargs["flight_recorder"] = recorder
    use_kernels = enactor_kwargs.pop("kernels", False)
    if use_kernels:
        from .core import kernels

        kernels.enable()  # warmup run below absorbs JIT compilation
    try:
        enactor, enact_kwargs = _make_enactor(
            primitive, graph, machine, **enactor_kwargs
        )
        metrics = enactor.enact(**enact_kwargs)  # warmup: arenas grow here
        for ws in enactor.workspaces:
            if ws is not None:
                ws.reset_counters()
        samples = []
        for _ in range(repeats):
            if tracer is not None:
                tracer.clear()  # steady-state tracing cost, bounded memory
            if recorder is not None:
                recorder.clear()  # steady-state ring cost, bounded memory
            t0 = time.perf_counter()
            metrics = enactor.enact(**enact_kwargs)
            samples.append((time.perf_counter() - t0) * 1e3)
        workspace = None
        if any(ws is not None for ws in enactor.workspaces):
            workspace = {
                "takes": sum(ws.takes for ws in enactor.workspaces if ws),
                "grows": sum(ws.grows for ws in enactor.workspaces if ws),
                "nbytes": sum(ws.nbytes for ws in enactor.workspaces if ws),
            }
        enactor.close()
    finally:
        if use_kernels:
            from .core import kernels

            kernels.disable()
    return {
        "median_ms": statistics.median(samples),
        "min_ms": min(samples),
        "supersteps": metrics.supersteps,
        "workspace": workspace,
    }


def run_bench(
    rmat_scale: int = 13,
    road_side: int = 48,
    repeats: int = 3,
    gpu_counts: Sequence[int] = DEFAULT_GPU_COUNTS,
    primitives: Sequence[str] = BENCH_PRIMITIVES,
    datasets: Sequence[str] = ("rmat", "road"),
    progress=None,
) -> dict:
    """Run the benchmark matrix; returns the BENCH_2-shaped dict."""
    graphs = _build_graphs(rmat_scale, road_side)
    cases: List[dict] = []
    for dataset in datasets:
        base_graph = graphs[dataset]
        for primitive in primitives:
            graph = base_graph
            if primitive == "sssp":
                graph = add_random_weights(base_graph, 1, 64, seed=2)
            for n in gpu_counts:
                case = {
                    "primitive": primitive,
                    "dataset": dataset,
                    "gpus": n,
                    "variants": {},
                }
                for name, kwargs in _VARIANTS.items():
                    if progress is not None:
                        progress(f"{dataset}/{primitive} x{n} [{name}]")
                    case["variants"][name] = _time_variant(
                        primitive, graph, n, repeats, **dict(kwargs)
                    )
                ser = case["variants"]["serial"]["median_ms"]
                thr = case["variants"]["threads"]["median_ms"]
                prc = case["variants"]["processes"]["median_ms"]
                sup = case["variants"]["processes_supervised"]["median_ms"]
                krn = case["variants"]["serial_kernels"]["median_ms"]
                nws = case["variants"]["serial_noworkspace"]["median_ms"]
                trd = case["variants"]["serial_traced"]["median_ms"]
                rec = case["variants"]["serial_recorded"]["median_ms"]
                ptr = case["variants"]["processes_traced"]["median_ms"]
                case["speedup_threads"] = ser / thr if thr else 0.0
                case["speedup_processes"] = ser / prc if prc else 0.0
                case["speedup_kernels"] = ser / krn if krn else 0.0
                case["speedup_workspace"] = nws / ser if ser else 0.0
                case["overhead_traced"] = trd / ser if ser else 0.0
                case["overhead_recorded"] = rec / ser if ser else 0.0
                case["overhead_traced_processes"] = (
                    ptr / prc if prc else 0.0
                )
                case["supervision_overhead"] = sup / prc if prc else 0.0
                # workers the processes backend could actually run in
                # parallel: one per GPU, capped by host cores
                workers = max(1, min(n, os.cpu_count() or 1))
                case["workers"] = workers
                case["efficiency_per_worker"] = (
                    case["speedup_processes"] / workers
                )
                cases.append(case)
    from .core import kernels

    # record the layer the serial_kernels variant actually ran with
    # (enable() is idempotent and cheap; compilation is lazy)
    was_enabled = kernels.is_enabled()
    kernel_status = kernels.enable()
    if not was_enabled:
        kernels.disable()
    result = {
        "schema": "repro-bench-5",
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "kernels": kernel_status,
        },
        "config": {
            "rmat_scale": rmat_scale,
            "rmat_edge_factor": 16,
            "road_side": road_side,
            "repeats": repeats,
            "gpu_counts": list(gpu_counts),
            "primitives": list(primitives),
            "datasets": list(datasets),
        },
        "cases": cases,
        "notes": (
            "speedup_threads and speedup_processes need host cores to "
            "express themselves: supersteps can only overlap across "
            "physical cores (~1.0 on a 1-core host, and the regression "
            "gates for them report 'skipped: 1-core host' rather than "
            "vacuously passing). efficiency_per_worker divides "
            "speedup_processes by min(gpus, cpu_count). "
            "speedup_workspace (zero-copy/arena win) and speedup_kernels "
            "(compiled hot loops; ~1.0 on the numpy fallback) are "
            "host-parallelism independent. supervision_overhead is the "
            "no-fault cost of the worker supervisor relative to the "
            "plain processes backend (heartbeat threads + bounded "
            "waits + shm checksums), gated at 1.05x. overhead_recorded "
            "is the enabled cost of the always-on flight recorder on "
            "serial (gated at 1.05x); overhead_traced_processes is the "
            "tracer cost on the processes backend, including the "
            "stage/pickle/adopt path (1-core skip like the other "
            "processes gates)."
        ),
    }
    result["gates"] = {
        "threads": check_threads_regression(result),
        "processes": check_processes_regression(result),
        "tracing": check_tracing_overhead(result),
        "tracing_processes": check_processes_tracing_overhead(result),
        "supervision": check_supervision_overhead(result),
        "recorder": check_recorder_overhead(result),
    }
    return result


def write_bench(result: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=False)
        fh.write("\n")


def _single_core(result: dict) -> bool:
    return (result.get("host", {}).get("cpu_count") or 1) <= 1


def check_threads_regression(
    result: dict, primitive: str = "bfs", gpus: int = 4, max_ratio: float = 1.2
) -> Optional[str]:
    """CI gate: threads must not be slower than ``max_ratio`` x serial on
    the given case (RMAT).

    On a 1-core host the ratio is pure dispatch noise — threads *cannot*
    beat serial there — so instead of passing vacuously the gate returns
    an explicit ``"skipped: 1-core host, gate skipped"`` marker (callers
    print it and do not fail).  Returns an error string on regression,
    or None if OK.
    """
    if _single_core(result):
        return "skipped: 1-core host, gate skipped"
    for case in result["cases"]:
        if (
            case["primitive"] == primitive
            and case["gpus"] == gpus
            and case["dataset"] == "rmat"
        ):
            ser = case["variants"]["serial"]["median_ms"]
            thr = case["variants"]["threads"]["median_ms"]
            if thr > ser * max_ratio:
                return (
                    f"threads backend {thr:.2f} ms vs serial {ser:.2f} ms "
                    f"on {gpus}-GPU {primitive} (> {max_ratio:.2f}x)"
                )
            return None
    return f"no bench case for {gpus}-GPU {primitive} on rmat"


def check_processes_regression(
    result: dict, primitive: str = "bfs", gpus: int = 4, max_ratio: float = 1.0
) -> Optional[str]:
    """CI gate: on a multi-core host the processes backend must beat (or
    at least match, ``max_ratio=1.0``) the threads backend on the given
    RMAT case — shared-memory workers are the whole point of the layer.

    On a 1-core host workers serialize onto one core and the fork/pipe
    overhead dominates; the gate returns the explicit
    ``"skipped: 1-core host, gate skipped"`` marker instead of passing
    (or failing) on noise.
    """
    if _single_core(result):
        return "skipped: 1-core host, gate skipped"
    for case in result["cases"]:
        if (
            case["primitive"] == primitive
            and case["gpus"] == gpus
            and case["dataset"] == "rmat"
        ):
            thr = case["variants"]["threads"]["median_ms"]
            prc = case["variants"]["processes"]["median_ms"]
            if prc > thr * max_ratio:
                return (
                    f"processes backend {prc:.2f} ms vs threads "
                    f"{thr:.2f} ms on {gpus}-GPU {primitive} "
                    f"(> {max_ratio:.2f}x)"
                )
            return None
    return f"no bench case for {gpus}-GPU {primitive} on rmat"


def check_tracing_overhead(
    result: dict, primitive: str = "bfs", gpus: int = 4, max_ratio: float = 1.5
) -> Optional[str]:
    """CI gate: a live tracer must cost at most ``max_ratio`` x serial on
    the given RMAT case.  Returns an error string, or None if OK."""
    for case in result["cases"]:
        if (
            case["primitive"] == primitive
            and case["gpus"] == gpus
            and case["dataset"] == "rmat"
        ):
            ser = case["variants"]["serial"]["median_ms"]
            trd = case["variants"]["serial_traced"]["median_ms"]
            if trd > ser * max_ratio:
                return (
                    f"traced run {trd:.2f} ms vs serial {ser:.2f} ms on "
                    f"{gpus}-GPU {primitive} (> {max_ratio:.2f}x)"
                )
            return None
    return f"no bench case for {gpus}-GPU {primitive} on rmat"


def check_processes_tracing_overhead(
    result: dict, primitive: str = "bfs", gpus: int = 4, max_ratio: float = 1.5
) -> Optional[str]:
    """CI gate: a live tracer on the *processes* backend must cost at
    most ``max_ratio`` x the untraced processes run on the given RMAT
    case.  Workers stage their span records inside the result payload
    and the parent adopts them, so this bounds the pickle/adopt path —
    the part of tracing the serial gate cannot see.

    On a 1-core host the processes medians are fork/pipe scheduling
    noise (same rationale as the other processes gates), so the gate
    returns the explicit ``"skipped: 1-core host, gate skipped"``
    marker instead of judging jitter.
    """
    if _single_core(result):
        return "skipped: 1-core host, gate skipped"
    for case in result["cases"]:
        if (
            case["primitive"] == primitive
            and case["gpus"] == gpus
            and case["dataset"] == "rmat"
        ):
            prc = case["variants"]["processes"]["median_ms"]
            ptr = case["variants"]["processes_traced"]["median_ms"]
            if ptr > prc * max_ratio:
                return (
                    f"traced processes {ptr:.2f} ms vs plain "
                    f"{prc:.2f} ms on {gpus}-GPU {primitive} "
                    f"(> {max_ratio:.2f}x)"
                )
            return None
    return f"no bench case for {gpus}-GPU {primitive} on rmat"


def check_recorder_overhead(
    result: dict, primitive: str = "bfs", gpus: int = 4,
    max_ratio: float = 1.05,
) -> Optional[str]:
    """CI gate: the always-on flight recorder must cost at most
    ``max_ratio`` x plain serial on the given RMAT case.  The recorder
    is designed to fly on every production run (a bounded ring of
    coarse per-superstep records, not per-span tracing), so its gate is
    as tight as the supervision one.

    The 1.05x bound leaves no room for scheduler jitter on a few-ms
    serial case, so this gate compares ``min_ms`` — the classic
    low-noise wall-clock estimator — rather than the medians the
    reported ``overhead_recorded`` ratio uses.  Returns an error
    string, or None if OK."""
    for case in result["cases"]:
        if (
            case["primitive"] == primitive
            and case["gpus"] == gpus
            and case["dataset"] == "rmat"
        ):
            ser = case["variants"]["serial"]["min_ms"]
            rec = case["variants"]["serial_recorded"]["min_ms"]
            if rec > ser * max_ratio:
                return (
                    f"recorded run {rec:.2f} ms vs serial {ser:.2f} ms "
                    f"on {gpus}-GPU {primitive} (> {max_ratio:.2f}x)"
                )
            return None
    return f"no bench case for {gpus}-GPU {primitive} on rmat"


def check_supervision_overhead(
    result: dict, primitive: str = "bfs", gpus: int = 4, max_ratio: float = 1.05
) -> Optional[str]:
    """CI gate: the supervised processes backend must cost at most
    ``max_ratio`` x the plain processes backend on the given RMAT case
    when no faults fire — the safety net must be near-free on the happy
    path.

    On a 1-core host the processes medians are dominated by fork/pipe
    scheduling noise (the same reason the threads/processes gates skip
    there), so the gate returns the explicit skip marker instead of
    failing on jitter.
    """
    if _single_core(result):
        return "skipped: 1-core host, gate skipped"
    for case in result["cases"]:
        if (
            case["primitive"] == primitive
            and case["gpus"] == gpus
            and case["dataset"] == "rmat"
        ):
            prc = case["variants"]["processes"]["median_ms"]
            sup = case["variants"]["processes_supervised"]["median_ms"]
            if sup > prc * max_ratio:
                return (
                    f"supervised processes {sup:.2f} ms vs plain "
                    f"{prc:.2f} ms on {gpus}-GPU {primitive} "
                    f"(> {max_ratio:.2f}x)"
                )
            return None
    return f"no bench case for {gpus}-GPU {primitive} on rmat"


def check_baseline_overhead(
    result: dict, baseline: dict, max_overhead: float = 1.05
) -> Optional[str]:
    """Tracing-disabled regression gate against a previous bench file.

    Compares every case's plain ``serial`` median (which executes all the
    ``tracer is None`` guards) against the same case in ``baseline``.
    Returns an error string on violation, a ``"skipped: ..."`` string
    when the runs are not comparable (different config or host, where
    wall-clock ratios are meaningless), or None when within bounds.
    """
    if baseline.get("config") != result.get("config"):
        return "skipped: baseline config differs from this run"
    if baseline.get("host", {}).get("cpu_count") != \
            result.get("host", {}).get("cpu_count"):
        return "skipped: baseline host differs from this run"
    base_cases = {
        (c["dataset"], c["primitive"], c["gpus"]): c
        for c in baseline.get("cases", [])
    }
    worst = None
    for case in result["cases"]:
        key = (case["dataset"], case["primitive"], case["gpus"])
        ref = base_cases.get(key)
        if ref is None:
            continue
        ser = case["variants"]["serial"]["median_ms"]
        ref_ser = ref["variants"]["serial"]["median_ms"]
        if not ref_ser:
            continue
        ratio = ser / ref_ser
        if worst is None or ratio > worst[0]:
            worst = (ratio, key, ser, ref_ser)
    if worst is None:
        return "skipped: no overlapping cases with the baseline"
    ratio, key, ser, ref_ser = worst
    if ratio > max_overhead:
        return (
            f"serial {ser:.2f} ms vs baseline {ref_ser:.2f} ms on "
            f"{key[2]}-GPU {key[1]}/{key[0]} "
            f"({ratio:.3f}x > {max_overhead:.2f}x)"
        )
    return None
