"""Fig. 4 — multi-GPU speedup over 1 GPU for all six primitives.

Paper result (Section VII-B, 6x K40): geometric-mean speedups of
{2.63, 2.57, 2.00, 1.96, 3.86}x for BFS, SSSP, CC, BC, PR — and a flat
(~1x) curve for DOBFS, which is communication-bound.  We regenerate the
full grid (6 primitives x dataset suite x 1-6 GPUs) and check the
ordering/shape: PR scales best, DOBFS is flat, everything else lands in
the ~1.5-3.5x band, and speedups grow with GPU count for the scalable
primitives.
"""

import pytest

from conftest import emit_report
from repro.analysis.reporting import render_table
from repro.analysis.scaling import geomean_speedups, run_speedup_sweep

PRIMS = ["bfs", "dobfs", "sssp", "cc", "bc", "pr"]
SUITE = [
    "soc-LiveJournal1",
    "hollywood-2009",
    "soc-orkut",
    "indochina-2004",
    "uk-2002",
    "rmat_n21_256",
]
GPU_COUNTS = (1, 2, 3, 4, 5, 6)

PAPER_6GPU = {
    "bfs": 2.63,
    "sssp": 2.57,
    "cc": 2.00,
    "bc": 1.96,
    "pr": 3.86,
    "dobfs": 1.0,
}


@pytest.mark.benchmark(group="fig4")
def test_fig4_primitive_speedups(benchmark):
    speedups = {}
    for prim in PRIMS:
        pts = run_speedup_sweep(prim, SUITE, gpu_counts=GPU_COUNTS, src=1)
        speedups[prim] = geomean_speedups(pts)

    rows = [
        [prim]
        + [f"{speedups[prim][n]:.2f}" for n in GPU_COUNTS]
        + [f"{PAPER_6GPU[prim]:.2f}"]
        for prim in PRIMS
    ]
    emit_report(
        "fig4_speedup",
        render_table(
            ["primitive"] + [f"{n}GPU" for n in GPU_COUNTS] + ["paper@6"],
            rows,
            title="Fig. 4: geomean speedup over 1 GPU (K40 node)",
        ),
    )

    # shape assertions against the paper
    six = {p: speedups[p][6] for p in PRIMS}
    assert six["pr"] == max(six.values())  # PR scales best
    assert six["dobfs"] == min(six.values())  # DOBFS flat/worst
    assert six["dobfs"] < 1.6
    for prim in ("bfs", "sssp", "cc", "bc"):
        assert 1.2 < six[prim] < 4.5, f"{prim}: {six[prim]}"
        # monotone-ish growth with GPU count (small dips allowed)
        assert speedups[prim][6] >= speedups[prim][2] * 0.9

    benchmark(
        lambda: run_speedup_sweep(
            "bfs", ["soc-LiveJournal1"], gpu_counts=(1, 6), src=1
        )
    )
