"""Fig. 3 — memory consumption of the four allocation schemes (BFS).

Paper finding (Section VI-B): just-enough allocation cuts the footprint
far below worst-case (max) allocation; prealloc+fusion is what (DO)BFS
ships with because fusion removes the O(|E|) intermediate frontier;
compute time is near-identical across schemes.  We reproduce the peak
per-GPU memory (in scaled GB, comparable to the paper's axis) for BFS on
the kron / soc-orkut / uk-2002 stand-ins.
"""

import pytest

from conftest import emit_report
from repro.analysis.reporting import render_table
from repro.core.enactor import Enactor
from repro.graph import datasets
from repro.primitives.bfs import BFSIteration, BFSProblem
from repro.sim.machine import Machine
from repro.sim.memory import scheme_by_name

DATASETS = ["kron_n24_32", "soc-orkut", "uk-2002"]
SCHEMES = ["just-enough", "fixed", "max", "prealloc+fusion"]
GB = 1024.0**3


def _peak_and_time(ds_name, scheme_name, num_gpus=4):
    g = datasets.load(ds_name)
    machine = Machine(num_gpus, scale=datasets.machine_scale(ds_name))
    prob = BFSProblem(g, machine)
    en = Enactor(prob, BFSIteration, scheme=scheme_by_name(scheme_name))
    metrics = en.enact(src=1)
    peak = sum(metrics.peak_memory.values()) / GB
    return peak, metrics.elapsed


@pytest.mark.benchmark(group="fig3")
def test_fig3_allocation_schemes(benchmark):
    rows = []
    for ds in DATASETS:
        peaks = {}
        times = {}
        for scheme in SCHEMES:
            peaks[scheme], times[scheme] = _peak_and_time(ds, scheme)
        rows.append([ds] + [f"{peaks[s]:.2f}" for s in SCHEMES])

        # paper shape: max biggest; just-enough and prealloc+fusion smallest
        assert peaks["max"] > peaks["fixed"] > peaks["just-enough"]
        assert peaks["prealloc+fusion"] < peaks["fixed"]
        # "each scheme has near-identical computation times"
        ts = sorted(times.values())
        assert ts[-1] < ts[0] * 1.5

    emit_report(
        "fig3_memory",
        render_table(
            ["dataset"] + SCHEMES,
            rows,
            title="Fig. 3: total peak memory (GB, scaled) for BFS on 4 GPUs",
        ),
    )

    benchmark(lambda: _peak_and_time("soc-orkut", "just-enough"))
