#!/usr/bin/env python
"""Convenience runner for the wall-clock backend bench.

Equivalent to ``python -m repro bench`` with the same flags; exists so
the perf benchmark has an obvious entry point next to its README::

    python benchmarks/perf/run_bench.py --smoke --gate
"""

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))


def main() -> int:
    from repro.cli import main as repro_main

    return repro_main(["bench"] + sys.argv[1:])


if __name__ == "__main__":
    sys.exit(main())
