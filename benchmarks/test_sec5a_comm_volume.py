"""Section V-A — sensitivity to communication volume H and latency.

Paper findings:
* runtime varies *linearly* with artificially-inflated H;
* DOBFS is more sensitive to H than BFS and PR (its W and H are of the
  same scale, especially on rmat);
* inflating communication *latency* 10x makes "no appreciable
  difference".
"""

import numpy as np
import pytest

from conftest import emit_report
from repro.analysis.reporting import render_table
from repro.core.enactor import Enactor
from repro.graph import datasets
from repro.primitives.bfs import BFSIteration, BFSProblem
from repro.primitives.dobfs import DOBFSIteration, DOBFSProblem
from repro.primitives.pr import PRIteration, PRProblem
from repro.sim.machine import Machine
from repro.sim.memory import FixedPrealloc

DATASET = "rmat_n21_256"
INFLATIONS = [1, 2, 4, 8]


def _elapsed(prim, inflation, latency_scale=1.0):
    g = datasets.load(DATASET)
    scale = datasets.machine_scale(DATASET)
    machine = Machine(4, scale=scale)
    if prim == "bfs":
        prob, it = BFSProblem(g, machine), BFSIteration
        kwargs = {"src": 1}
        scheme = None
    elif prim == "dobfs":
        prob, it = DOBFSProblem(g, machine), DOBFSIteration
        kwargs = {"src": 1}
        scheme = None
    else:
        prob, it = (
            PRProblem(g, machine, max_iter=20, threshold=0.0),
            PRIteration,
        )
        kwargs = {}
        scheme = FixedPrealloc()
    en = Enactor(
        prob,
        it,
        scheme=scheme,
        comm_volume_scale=float(inflation),
        comm_latency_scale=latency_scale,
    )
    return en.enact(**kwargs).elapsed


@pytest.mark.benchmark(group="sec5a")
def test_sec5a_comm_volume_sensitivity(benchmark):
    rows = []
    slopes = {}
    for prim in ("bfs", "dobfs", "pr"):
        times = [_elapsed(prim, h) for h in INFLATIONS]
        rel = [t / times[0] for t in times]
        # linear-fit slope of runtime vs inflation factor
        slope = float(np.polyfit(INFLATIONS, rel, 1)[0])
        slopes[prim] = slope
        rows.append([prim] + [f"{r:.2f}" for r in rel] + [f"{slope:.3f}"])

        # runtime grows ~linearly: the quadratic residual is small
        fit = np.polyval(np.polyfit(INFLATIONS, rel, 1), INFLATIONS)
        assert np.max(np.abs(fit - rel)) < 0.25 * max(rel)

    emit_report(
        "sec5a_comm_volume",
        render_table(
            ["primitive"] + [f"Hx{h}" for h in INFLATIONS] + ["slope"],
            rows,
            title=f"Sec V-A: relative runtime vs H inflation ({DATASET}, 4 GPUs)",
        ),
    )

    # DOBFS is the most H-sensitive primitive
    assert slopes["dobfs"] > slopes["bfs"]
    assert slopes["dobfs"] > slopes["pr"]

    # latency x10: no appreciable difference (paper: none observed)
    base = _elapsed("bfs", 1, latency_scale=1.0)
    slow = _elapsed("bfs", 1, latency_scale=10.0)
    assert slow < base * 1.25

    benchmark(lambda: _elapsed("bfs", 1))
