"""Table I — measured W/H/C/S of every primitive vs the complexity bounds.

Regenerates the paper's algorithm-summary table as *measurements*: for
each primitive on a 4-GPU K40 node we report total edges visited (W),
items communicated (H), communication-computation items (C) and
supersteps (S), next to the Table I bound evaluated for the same graph
and partition; ratios ~<= 1 confirm the implementation matches the
paper's asymptotic behaviour.
"""

import pytest

from conftest import emit_report
from repro.analysis.bsp import table1_check
from repro.analysis.reporting import render_table
from repro.graph import datasets
from repro.graph.build import add_random_weights
from repro.primitives import RUNNERS
from repro.sim.machine import Machine

DATASET = "soc-LiveJournal1"
PRIMS = ["bfs", "dobfs", "sssp", "cc", "bc", "pr"]


def _run(prim, graph, machine):
    runner = RUNNERS[prim]
    if prim in ("bfs", "dobfs", "sssp", "bc"):
        return runner(graph, machine, src=1)
    return runner(graph, machine)


@pytest.mark.benchmark(group="table1")
def test_table1_complexity(benchmark):
    g = datasets.load(DATASET)
    gw = add_random_weights(g, 1, 64, seed=2)
    scale = datasets.machine_scale(DATASET)

    rows = []
    for prim in PRIMS:
        graph = gw if prim == "sssp" else g
        machine = Machine(4, scale=scale)
        _, metrics, prob = _run(prim, graph, machine)
        row = table1_check(prim, graph, prob.partition, metrics)
        rows.append(
            [
                prim,
                row.measured_W,
                f"{row.w_ratio:.3f}",
                row.measured_H,
                f"{row.h_ratio:.3f}",
                row.measured_C,
                f"{row.c_ratio:.3f}",
                row.supersteps,
            ]
        )
        assert row.w_ratio <= 2.5
        assert row.h_ratio <= 2.5
        assert row.c_ratio <= 2.5

    emit_report(
        "table1_complexity",
        render_table(
            ["primitive", "W", "W/bound", "H", "H/bound", "C", "C/bound", "S"],
            rows,
            title=f"Table I check on {DATASET} stand-in, 4x K40",
        ),
    )

    # benchmark the BFS enact on a single prepared problem (problem setup
    # — partitioning, distribution — is one-time cost in the paper too)
    from repro.core.enactor import Enactor
    from repro.primitives.bfs import BFSIteration, BFSProblem

    prob = BFSProblem(g, Machine(4, scale=scale))
    enactor = Enactor(prob, BFSIteration)
    benchmark(lambda: enactor.enact(src=1))
