"""Table IV — comparison with out-of-core GPU and CPU systems.

Paper result: the in-core multi-GPU framework processes the *largest*
graphs those systems report, one to three orders of magnitude faster —
GraphReduce needs 49-162 s where Gunrock needs 0.06-2 s on uk-2002;
Frog and Totem are closer but still behind at equal processor count.
We regenerate the per-system rows as runtimes on the stand-in graphs.
"""

import pytest

from conftest import emit_report
from repro.analysis.reporting import render_table
from repro.baselines import frog_run, graphmap_run, graphreduce_run, totem_run
from repro.graph import datasets
from repro.graph.build import add_random_weights
from repro.primitives import RUNNERS
from repro.sim.machine import Machine

SRC = 1


def _ours(prim, graph, scale, num_gpus):
    machine = Machine(num_gpus, scale=scale)
    runner = RUNNERS[prim]
    if prim in ("bfs", "sssp", "bc"):
        _, metrics, _ = runner(graph, machine, src=SRC)
    elif prim == "pr":
        # same fixed-iteration convention as the out-of-core systems
        _, metrics, _ = runner(graph, machine, max_iter=30)
    else:
        _, metrics, _ = runner(graph, machine)
    return metrics.elapsed


@pytest.mark.benchmark(group="table4")
def test_table4_outofcore_comparisons(benchmark):
    rows = []

    # --- GraphReduce on uk-2002: {BFS, SSSP, CC, PR} x 1 GPU -------------
    uk = datasets.load("uk-2002")
    uk_scale = datasets.machine_scale("uk-2002")
    ukw = add_random_weights(uk, 1, 64, seed=2)
    paper_gr = {"bfs": (49, 0.059), "sssp": (80, 0.76), "cc": (153, 1.85),
                "pr": (162, 1.99)}
    for prim in ("bfs", "sssp", "cc", "pr"):
        g = ukw if prim == "sssp" else uk
        theirs = graphreduce_run(g, prim, SRC, scale=uk_scale).elapsed
        ours = _ours(prim, g, uk_scale, 1)
        rows.append(
            [f"GraphReduce {prim} uk-2002", f"{theirs:.2f}", f"{ours:.3f}",
             f"{theirs / ours:.0f}x",
             f"{paper_gr[prim][0]}s vs {paper_gr[prim][1]}s"]
        )
        # a decisive gap, as in the paper (SSSP's is the narrowest:
        # frontier relaxation re-runs many supersteps in-core too)
        assert theirs > 5 * ours, prim

    # --- Frog on twitter-rv stand-in -------------------------------------
    tw = datasets.load("twitter-rv")
    tw_scale = datasets.machine_scale("twitter-rv")
    for prim, gpus in (("bfs", 1), ("cc", 3), ("pr", 1)):
        theirs = frog_run(tw, prim, SRC, scale=tw_scale).elapsed
        ours = _ours(prim, tw, tw_scale, gpus)
        rows.append(
            [f"Frog {prim} twitter-rv ({gpus} GPU)", f"{theirs:.2f}",
             f"{ours:.3f}", f"{theirs / ours:.1f}x", ""]
        )
        assert theirs > ours, prim

    # --- GraphMap (Lee) on twitter-rv: CPU cluster, 4 cores x 21 nodes ---
    from repro.types import ID32_F32

    # SSSP stores 32-bit edge values on the GPU (paper: ints in [0, 64])
    tw32 = datasets.load("twitter-rv", ids=ID32_F32)
    paper_gm = {"sssp": (126, 2.20), "cc": (304, 1.71), "pr": (149, 49.7)}
    for prim, gpus in (("sssp", 2), ("cc", 3), ("pr", 1)):
        g = add_random_weights(tw32, 1, 64, seed=2) if prim == "sssp" else tw
        theirs = graphmap_run(g, prim, SRC, scale=tw_scale).elapsed
        ours = _ours(prim, g, tw_scale, gpus)
        rows.append(
            [f"GraphMap {prim} twitter-rv ({gpus} GPU)", f"{theirs:.2f}",
             f"{ours:.3f}", f"{theirs / ours:.1f}x",
             f"{paper_gm[prim][0]}s vs {paper_gm[prim][1]}s"]
        )
        assert theirs > ours, prim

    # --- Totem on twitter-mpi stand-in (2 GPUs + CPUs vs our 4 GPUs) -----
    tm = datasets.load("twitter-mpi")
    tm_scale = datasets.machine_scale("twitter-mpi")
    tmw = add_random_weights(tm, 1, 64, seed=2)
    for prim in ("bfs", "sssp", "bc", "pr"):
        g = tmw if prim == "sssp" else tm
        theirs = totem_run(g, prim, SRC, num_gpus=2, scale=tm_scale).elapsed
        ours = _ours(prim, g, tm_scale, 4)
        rows.append(
            [f"Totem {prim} twitter-mpi", f"{theirs:.3f}", f"{ours:.3f}",
             f"{theirs / ours:.1f}x", ""]
        )
        assert theirs > 0.5 * ours, prim  # we at least match Totem

    emit_report(
        "table4_outofcore",
        render_table(
            ["comparison", "theirs (s)", "ours (s)", "ratio", "paper"],
            rows,
            title="Table IV: out-of-core / CPU-hybrid comparisons",
        ),
    )

    benchmark(lambda: _ours("bfs", uk, uk_scale, 1))
