"""Table III — comparison with previous in-core GPU BFS systems.

Each row pits our framework against a prior system's *strategy model*
(see ``repro.baselines``) on the stand-in for the graph that system
highlighted, at the paper's GPU counts.  The paper's qualitative result:
Gunrock wins every in-core comparison at equal GPU count — by 2-5x over
Enterprise, ~2.7x over B40C's mGPU BFS, >4x over Medusa-era engines and
the atomic-heavy 2-D partitioned codes — except the 64-GPU-cluster
Friendster row (0.90x), which a single node cannot match.
"""

import pytest

from conftest import emit_report
from repro.analysis.gteps import traversal_gteps
from repro.analysis.reporting import render_table
from repro.baselines import b40c_bfs, enterprise_dobfs, medusa_bfs, twod_bfs
from repro.graph import datasets
from repro.primitives import run_bfs, run_dobfs
from repro.sim.machine import Machine

SRC = 1


def _ours(prim, ds_name, num_gpus):
    g = datasets.load(ds_name)
    scale = datasets.machine_scale(ds_name)
    run = run_dobfs if prim == "dobfs" else run_bfs
    labels, metrics, _ = run(g, Machine(num_gpus, scale=scale), src=SRC)
    return traversal_gteps(g, labels, metrics)


def _theirs(fn, ds_name, num_gpus, **kw):
    g = datasets.load(ds_name)
    scale = datasets.machine_scale(ds_name)
    r = fn(g, SRC, num_gpus=num_gpus, scale=scale, **kw)
    return r.gteps(g.num_edges)


@pytest.mark.benchmark(group="table3")
def test_table3_incore_comparisons(benchmark):
    rows = []

    from repro.sim.interconnect import LinkSpec

    cluster = LinkSpec("cluster-net", 5e9, 15e-6)
    cases = [
        # (label, baseline fn, kwargs, dataset, their_gpus, our_gpus,
        #  our primitive, paper speedup, we_must_win)
        ("Enterprise 2xK40", enterprise_dobfs, {}, "kron_n24_32", 2, 2,
         "dobfs", 5.18, True),
        ("Enterprise 4xK40", enterprise_dobfs, {}, "kron_n24_32", 4, 4,
         "dobfs", 3.76, True),
        ("B40C 4xK40 (merrill rmat)", b40c_bfs, {}, "rmat_2Mv_128Me", 4, 4,
         "dobfs", 2.67, True),
        ("Medusa 4GPU", medusa_bfs, {}, "coPapersCiteseer", 4, 4, "bfs",
         1.23, True),
        ("Bisson cluster 4GPU", twod_bfs,
         {"atomic_heavy": True, "inter_node_link": cluster}, "com-orkut",
         4, 4, "bfs", 5.33, True),
        ("Bernaschi cluster 4GPU", twod_bfs,
         {"atomic_heavy": True, "inter_node_link": cluster}, "kron_n23_16",
         4, 4, "bfs", 23.7, True),
        ("Bernaschi cluster 16GPU", twod_bfs,
         {"atomic_heavy": True, "inter_node_link": cluster}, "kron_n25_16",
         16, 6, "dobfs", 9.69, True),
        ("Fu cluster 2x2GPU", twod_bfs, {"inter_node_link": cluster},
         "kron_n23_32", 4, 4, "bfs", 4.43, True),
        # a 64-GPU cluster vs our 4 GPUs: near parity in the paper too
        ("Fu cluster 64GPU", twod_bfs, {"inter_node_link": cluster},
         "kron_n25_32", 64, 4, "dobfs", 1.41, False),
    ]

    for label, fn, kw, ds, their_n, our_n, prim, paper, must_win in cases:
        ours = _ours(prim, ds, our_n)
        theirs = _theirs(fn, ds, their_n, **kw)
        speedup = ours / theirs
        rows.append(
            [label, ds, f"{theirs:.1f}", f"{ours:.1f}", f"{speedup:.2f}",
             f"{paper:.2f}"]
        )
        if must_win:
            # the paper's qualitative claim: we win every same-scale row
            assert speedup > 1.0, f"{label}: {speedup}"
        else:
            assert speedup > 0.5, f"{label}: {speedup}"

    emit_report(
        "table3_incore",
        render_table(
            ["system", "graph", "theirs GTEPS", "ours GTEPS", "speedup",
             "paper"],
            rows,
            title="Table III: in-core BFS/DOBFS comparisons",
        ),
    )

    benchmark(lambda: _ours("dobfs", "kron_n24_32", 4))
