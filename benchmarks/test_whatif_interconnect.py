"""What-if studies on the interconnect — the paper's conclusions section.

Section VIII poses two open questions this harness can probe directly:

1. *"Reducing communication cost is the priority for future mGPU DOBFS"*
   (Section VI-A): we swap the PCIe3 peer links for NVLink-class links
   and measure how much of DOBFS's lost scaling comes back.
2. *"Can we achieve further scalability (scale-out) with multiple nodes,
   and given the increased latency and decreased bandwidth of those
   nodes, is it profitable to do so?"*: we model an 8-GPU configuration
   either as one node (peer groups of 4) or as two 4-GPU nodes joined by
   a network-class link (6 GB/s, 10 µs — InfiniBand FDR-ish), and compare
   against the paper's implied preference for scale-up.
"""

import pytest

from conftest import emit_report
from repro.analysis.gteps import traversal_gteps
from repro.analysis.reporting import render_table
from repro.graph import datasets
from repro.primitives import run_bfs, run_dobfs
from repro.sim.interconnect import NVLINK, LinkSpec
from repro.sim.machine import Machine

DATASET = "rmat_n24_32"

#: inter-node link: EDR InfiniBand-class bandwidth, network latency
IB_LINK = LinkSpec("infiniband", 6e9, 10e-6)


def _run(prim, num_gpus, **machine_kw):
    g = datasets.load(DATASET)
    machine = Machine(
        num_gpus, scale=datasets.machine_scale(DATASET), **machine_kw
    )
    run = run_dobfs if prim == "dobfs" else run_bfs
    labels, metrics, _ = run(g, machine, src=1)
    return traversal_gteps(g, labels, metrics), metrics


@pytest.mark.benchmark(group="whatif")
def test_whatif_nvlink_for_dobfs(benchmark):
    rows = []
    results = {}
    for label, kw in (
        ("pcie3-peer", {}),
        ("nvlink", {"peer_link": NVLINK, "host_link": NVLINK,
                    "peer_group_size": 8}),
    ):
        for n in (1, 4, 8):
            gteps, _ = _run("dobfs", n, **kw)
            results[(label, n)] = gteps
            rows.append([label, n, f"{gteps:.1f}"])

    emit_report(
        "whatif_nvlink",
        render_table(
            ["links", "GPUs", "DOBFS GTEPS"],
            rows,
            title=f"What-if: NVLink-class links for DOBFS on {DATASET}",
        ),
    )
    # 1-GPU rate is link-independent
    assert results[("nvlink", 1)] == pytest.approx(
        results[("pcie3-peer", 1)], rel=0.01
    )
    # NVLink recovers part of the loss — but only part: the broadcast's
    # combining computation C = O((n-1)|V|) is unchanged by faster wires,
    # so DOBFS stays bound below its 1-GPU rate.  This sharpens the
    # paper's conclusion: "reducing communication cost" must include the
    # communication *computation*, not just bandwidth.
    assert results[("nvlink", 4)] > 1.1 * results[("pcie3-peer", 4)]
    assert results[("nvlink", 8)] > 1.1 * results[("pcie3-peer", 8)]
    assert results[("nvlink", 4)] < results[("nvlink", 1)]

    benchmark(lambda: _run("dobfs", 4))


@pytest.mark.benchmark(group="whatif")
def test_whatif_scale_up_vs_scale_out(benchmark):
    rows = []
    results = {}
    for prim in ("bfs", "dobfs"):
        # scale-up: one 8-GPU node, peer groups of 4 (the paper's node)
        up, _ = _run(prim, 8)
        # scale-out: two 4-GPU nodes; cross-node traffic over the network
        out, _ = _run(prim, 8, peer_group_size=4, host_link=IB_LINK)
        results[prim] = (up, out)
        rows.append([prim, f"{up:.1f}", f"{out:.1f}", f"{up / out:.2f}x"])

    emit_report(
        "whatif_scale_out",
        render_table(
            ["primitive", "scale-up GTEPS", "scale-out GTEPS", "advantage"],
            rows,
            title="What-if: 8 GPUs in one node vs 2 nodes (Section VIII)",
        ),
    )
    # the paper's Section I position: "fewer but more powerful nodes, each
    # with more GPUs" — scale-up wins, most clearly for the
    # communication-bound DOBFS
    for prim in ("bfs", "dobfs"):
        up, out = results[prim]
        assert up >= out, prim
    up_b, out_b = results["dobfs"]
    up_f, out_f = results["bfs"]
    assert (up_b / out_b) >= (up_f / out_f) * 0.95

    benchmark(lambda: _run("bfs", 8))
