"""Ablations of the framework's design choices (Section III-C / VI-C).

The paper presents duplication/communication strategies and kernel
fusion as choices with explicit trade-offs; these ablations measure each
trade-off directly:

* **selective vs broadcast** for BFS: broadcast skips the split step but
  ships O((n-1)|F|) instead of O(|B|) — selective must win on time,
  broadcast on split-computation;
* **duplicate-1-hop vs duplicate-all**: 1-hop uses less memory (the
  paper's stated advantage) at equal results;
* **fusion on/off**: fused advance+filter launches fewer kernels and
  skips the intermediate frontier — same results, less memory, no
  slower.
"""

import numpy as np
import pytest

from conftest import emit_report
from repro.analysis.reporting import render_table
from repro.core.comm import BROADCAST, SELECTIVE
from repro.core.enactor import Enactor
from repro.graph import datasets
from repro.partition import DUPLICATE_1HOP, DUPLICATE_ALL
from repro.primitives.bfs import BFSIteration, BFSProblem
from repro.sim.machine import Machine
from repro.sim.memory import FixedPrealloc, PreallocFusion

DATASET = "uk-2002"
GB = 1024.0**3


def _bfs(communication=None, duplication=None, scheme=None, num_gpus=4):
    g = datasets.load(DATASET)
    machine = Machine(num_gpus, scale=datasets.machine_scale(DATASET))
    prob = BFSProblem(
        g, machine, communication=communication, duplication=duplication
    )
    en = Enactor(prob, BFSIteration, scheme=scheme)
    metrics = en.enact(src=1)
    peak = sum(metrics.peak_memory.values()) / GB
    return prob.labels(), metrics, peak


@pytest.mark.benchmark(group="ablation")
def test_ablation_communication_strategy(benchmark):
    l_sel, m_sel, _ = _bfs(communication=SELECTIVE)
    l_bc, m_bc, _ = _bfs(communication=BROADCAST)
    assert np.array_equal(l_sel, l_bc)  # strategy-independent results
    rows = [
        ["selective", f"{m_sel.elapsed * 1e3:.3f}", m_sel.total_items_sent],
        ["broadcast", f"{m_bc.elapsed * 1e3:.3f}", m_bc.total_items_sent],
    ]
    emit_report(
        "ablation_comm_strategy",
        render_table(
            ["strategy", "ms", "items sent (H)"],
            rows,
            title=f"BFS on {DATASET}, 4 GPUs: selective vs broadcast",
        ),
    )
    # broadcast ships more data and is slower for BFS (Section III-C).
    # The gap is |F|(n-1) vs |B|; on locality-rich web graphs |B| is
    # clearly smaller, on dense social graphs the two converge.
    assert m_bc.total_items_sent > 1.2 * m_sel.total_items_sent
    assert m_bc.elapsed > m_sel.elapsed

    benchmark(lambda: _bfs(communication=SELECTIVE))


@pytest.mark.benchmark(group="ablation")
def test_ablation_duplication_strategy(benchmark):
    l_all, m_all, peak_all = _bfs(duplication=DUPLICATE_ALL)
    l_1hop, m_1hop, peak_1hop = _bfs(duplication=DUPLICATE_1HOP)
    assert np.array_equal(l_all, l_1hop)
    rows = [
        ["duplicate-all", f"{peak_all:.2f}", f"{m_all.elapsed * 1e3:.3f}"],
        ["duplicate-1-hop", f"{peak_1hop:.2f}", f"{m_1hop.elapsed * 1e3:.3f}"],
    ]
    emit_report(
        "ablation_duplication",
        render_table(
            ["strategy", "peak GB", "ms"],
            rows,
            title=f"BFS on {DATASET}, 4 GPUs: vertex duplication strategies",
        ),
    )
    # Section III-C: "duplicate-1-hop uses less memory space"
    assert peak_1hop < peak_all

    benchmark(lambda: _bfs(duplication=DUPLICATE_1HOP))


@pytest.mark.benchmark(group="ablation")
def test_ablation_kernel_fusion(benchmark):
    l_f, m_f, peak_f = _bfs(scheme=PreallocFusion())
    l_u, m_u, peak_u = _bfs(scheme=FixedPrealloc())
    assert np.array_equal(l_f, l_u)
    rows = [
        ["fused", f"{peak_f:.2f}", f"{m_f.elapsed * 1e3:.3f}"],
        ["unfused", f"{peak_u:.2f}", f"{m_u.elapsed * 1e3:.3f}"],
    ]
    emit_report(
        "ablation_fusion",
        render_table(
            ["mode", "peak GB", "ms"],
            rows,
            title=f"BFS on {DATASET}, 4 GPUs: advance+filter fusion",
        ),
    )
    # Section VI-C: fusion removes the intermediate buffer (memory) and
    # never slows the computation
    assert peak_f < peak_u
    assert m_f.elapsed <= m_u.elapsed * 1.05

    benchmark(lambda: _bfs(scheme=PreallocFusion()))


@pytest.mark.benchmark(group="ablation")
def test_ablation_communication_overlap(benchmark):
    """Gunrock overlaps computation and communication across streams
    (Section III-B "Manage GPUs").  Measured here as an ablation: the
    overlap helps exactly where the paper's design predicts — the
    communication-bound DOBFS — and never hurts the compute-bound BFS."""
    from repro.primitives.dobfs import DOBFSIteration, DOBFSProblem

    g = datasets.load("kron_n24_32")
    scale = datasets.machine_scale("kron_n24_32")
    rows = []
    times = {}
    for prim, prob_cls, it_cls in (
        ("bfs", BFSProblem, BFSIteration),
        ("dobfs", DOBFSProblem, DOBFSIteration),
    ):
        for ov in (False, True):
            machine = Machine(6, scale=scale)
            prob = prob_cls(g, machine)
            m = Enactor(
                prob, it_cls, overlap_communication=ov
            ).enact(src=1)
            times[(prim, ov)] = m.elapsed
            rows.append(
                [prim, "overlap" if ov else "strict",
                 f"{m.elapsed * 1e3:.3f}"]
            )
    emit_report(
        "ablation_overlap",
        render_table(
            ["primitive", "barrier", "ms"],
            rows,
            title="kron_n24_32, 6 GPUs: compute/communication overlap",
        ),
    )
    assert times[("dobfs", True)] < times[("dobfs", False)]
    assert times[("bfs", True)] <= times[("bfs", False)] * 1.0001

    benchmark(lambda: None)
