"""Section VII-C (last paragraph) — comparison vs Daga et al.'s APU.

Paper result (1 K40 vs the Hybrid++ APU): "Gunrock shows 5 to 10x
performance (TEPS) ... with the exception of the road network, in which
Gunrock's performance and efficiency are only half of Daga's.  Although
the APU provides the GPU with direct access to the main memory, its
overall limited bandwidth bottlenecks its performance."

The crossover is the interesting part: the discrete GPU's bandwidth wins
whenever frontiers are large; the APU's near-zero per-iteration latency
wins on high-diameter road networks.
"""

import pytest

from conftest import emit_report
from repro.analysis.reporting import render_table
from repro.baselines.apu import apu_hybrid_bfs
from repro.graph import datasets
from repro.primitives import run_bfs
from repro.sim.machine import Machine

# the Daga et al. comparison spans 8 usable graphs plus the road network
POWER_LAW = [
    "soc-LiveJournal1",
    "hollywood-2009",
    "soc-orkut",
    "soc-twitter-2010",
    "indochina-2004",
    "uk-2002",
    "rmat_n21_256",
    "coPapersCiteseer",
]


def _pair(ds_name):
    g = datasets.load(ds_name)
    scale = datasets.machine_scale(ds_name)
    apu = apu_hybrid_bfs(g, 1, scale=scale).elapsed
    _, metrics, _ = run_bfs(g, Machine(1, scale=scale), src=1)
    return apu, metrics.elapsed


@pytest.mark.benchmark(group="sec7c")
def test_sec7c_apu_comparison(benchmark):
    rows = []
    ratios = {}
    for ds in POWER_LAW + ["road-grid"]:
        apu, ours = _pair(ds)
        ratios[ds] = apu / ours
        rows.append(
            [ds, f"{apu * 1e3:.3f}", f"{ours * 1e3:.3f}",
             f"{ratios[ds]:.1f}x"]
        )
    emit_report(
        "sec7c_apu",
        render_table(
            ["graph", "APU ms", "K40 ms", "our advantage"],
            rows,
            title="Sec VII-C: 1x K40 vs Hybrid++(APU) BFS",
        ),
    )
    # 3-12x faster on power-law graphs (paper: 5-10x)
    for ds in POWER_LAW:
        assert 2.0 < ratios[ds] < 15.0, (ds, ratios[ds])
    # ...but the road network flips: the APU wins (paper: we get ~0.5x)
    assert ratios["road-grid"] < 1.0, ratios["road-grid"]

    benchmark(lambda: _pair("soc-LiveJournal1"))
