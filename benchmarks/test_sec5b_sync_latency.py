"""Section V-B — per-iteration synchronization latency.

The paper's measurement: make each BFS iteration visit exactly 1 vertex
and 1 edge (a long path graph); total runtime is then S * l, giving the
per-iteration overhead l = {66.8, 124, 142, 188} us for 1-4 GPUs.  We
regenerate the same experiment on the virtual node and check both the
magnitudes and the paper's qualitative points: the 1->2 GPU jump is the
biggest, runtime is linear in S.
"""

import pytest

from conftest import emit_report
from repro.analysis.reporting import render_table
from repro.graph.build import line_graph_path
from repro.primitives.bfs import run_bfs
from repro.sim.machine import Machine

PAPER_US = {1: 66.8, 2: 124.0, 3: 142.0, 4: 188.0}
PATH = 400  # iterations ("large S")


def _per_iteration_us(num_gpus, length=PATH):
    g = line_graph_path(length)
    machine = Machine(num_gpus, scale=1.0)
    _, metrics, _ = run_bfs(g, machine, src=0)
    return metrics.elapsed / metrics.supersteps * 1e6, metrics


@pytest.mark.benchmark(group="sec5b")
def test_sec5b_sync_latency(benchmark):
    rows = []
    measured = {}
    for n in (1, 2, 3, 4):
        us, _ = _per_iteration_us(n)
        measured[n] = us
        rows.append([n, f"{us:.1f}", f"{PAPER_US[n]:.1f}"])

    emit_report(
        "sec5b_sync_latency",
        render_table(
            ["GPUs", "measured us/iter", "paper us/iter"],
            rows,
            title="Sec V-B: per-iteration overhead, 1-vertex-1-edge workload",
        ),
    )

    # magnitudes within 25% of the paper's measurements
    for n in (1, 2, 3, 4):
        assert measured[n] == pytest.approx(PAPER_US[n], rel=0.25), n
    # monotone; biggest jump is 1 -> 2 (inter-GPU sync turns on)
    assert measured[1] < measured[2] < measured[3] < measured[4]
    jumps = [measured[i + 1] - measured[i] for i in (1, 2, 3)]
    assert jumps[0] == max(jumps)

    # runtime linear in S: doubling the path doubles the time
    t1 = _per_iteration_us(2, length=200)[1].elapsed
    t2 = _per_iteration_us(2, length=400)[1].elapsed
    assert t2 == pytest.approx(2 * t1, rel=0.15)

    benchmark(lambda: _per_iteration_us(2, length=100))
