"""Negative ablation — per-EDGE communication scales poorly.

Section III-B: "We have not seen primitives that require per-edge
communication between GPUs, and argue that any such primitive will scale
poorly based on the large volume and computation workload required."

We test the argument by building a synthetic variant of BFS that, instead
of sending one update per remote border *vertex*, sends one message item
per cut *edge* (as e.g. the 2-D-partition codes effectively do).  The
volume ratio is exactly edge-cut / border-size, and the runtime gap grows
with it.
"""

import numpy as np
import pytest

from conftest import emit_report
from repro.analysis.reporting import render_table
from repro.core.enactor import Enactor
from repro.graph import datasets
from repro.partition.border import border_stats
from repro.primitives.bfs import BFSIteration, BFSProblem
from repro.sim.machine import Machine


class PerEdgeBFSIteration(BFSIteration):
    """BFS that ships one item per discovering *edge*, not per vertex.

    Implemented by disabling the framework's per-vertex dedup benefit:
    the output frontier repeats each discovered remote vertex once per
    incoming edge from this GPU (what a system without the
    border-vertex insight transmits).
    """

    def full_queue_core(self, ctx, frontier):
        from repro.core.operators.advance import advance_push

        labels = ctx.slice["labels"]
        label_val = ctx.iteration + 1
        if frontier.size == 0:
            return np.empty(0, dtype=np.int64), []
        nbrs, srcs, eidx, a_stats = advance_push(
            ctx.sub.csr, frontier, ids_bytes=ctx.ids_bytes
        )
        unvisited_mask = labels[nbrs] == -1
        discovered_edges = nbrs[unvisited_mask]  # one entry per edge!
        survivors = np.unique(discovered_edges)
        labels[survivors] = label_val
        # local continuation uses the deduped set, but the *output* that
        # the framework splits/sends carries the per-edge duplicates for
        # remote vertices (we emulate by emitting all duplicates; the
        # local part is deduped again by labels on the next iteration)
        hosted_mask = ctx.sub.is_hosted(discovered_edges)
        out = np.concatenate(
            [survivors[ctx.sub.is_hosted(survivors)],
             discovered_edges[~hosted_mask]]
        )
        return out, [a_stats]


@pytest.mark.benchmark(group="ablation")
def test_per_edge_communication_scales_poorly(benchmark):
    ds = "soc-orkut"
    g = datasets.load(ds)
    scale = datasets.machine_scale(ds)

    rows = []
    results = {}
    for label, iteration_cls in (
        ("per-vertex (ours)", BFSIteration),
        ("per-edge", PerEdgeBFSIteration),
    ):
        machine = Machine(4, scale=scale)
        prob = BFSProblem(g, machine)
        metrics = Enactor(prob, iteration_cls).enact(src=1)
        results[label] = (metrics, prob)
        rows.append(
            [label, f"{metrics.elapsed * 1e3:.3f}",
             metrics.total_items_sent]
        )

    m_vertex, prob_v = results["per-vertex (ours)"]
    m_edge, prob_e = results["per-edge"]
    # both compute the same BFS
    assert np.array_equal(prob_v.labels(), prob_e.labels())

    st = border_stats(g, prob_v.partition)
    rows.append(["(edge cut / border)", "-",
                 f"{st.edge_cut}/{st.total_border}"])
    emit_report(
        "ablation_per_edge_comm",
        render_table(
            ["communication unit", "ms", "items sent (H)"],
            rows,
            title=f"BFS on {ds}, 4 GPUs: per-vertex vs per-edge messages",
        ),
    )

    # the Section III-B argument, measured: per-edge H is several times
    # the border size, and runtime follows
    assert m_edge.total_items_sent > 3 * m_vertex.total_items_sent
    assert m_edge.elapsed > 1.3 * m_vertex.elapsed

    benchmark(lambda: None)
