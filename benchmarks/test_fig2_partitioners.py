"""Fig. 2 — partitioner impact on 3 primitives x 3 datasets at 4 GPUs.

Paper finding: random ~ biased-random >= metis almost everywhere (with
small metis wins in a few cells), because border size — not edge cut —
is what the system pays for, and random's load balance is excellent.
We reproduce the 3x3 grid of 4-GPU speedups over 1 GPU per partitioner.
"""

import pytest

from conftest import emit_report
from repro.analysis.reporting import render_table
from repro.graph import datasets
from repro.partition import make_partitioner
from repro.primitives import run_bfs, run_dobfs, run_pagerank
from repro.sim.machine import Machine

GRID = [
    ("bfs", "kron_n24_32"),
    ("bfs", "soc-orkut"),
    ("bfs", "uk-2002"),
    ("dobfs", "kron_n24_32"),
    ("dobfs", "soc-orkut"),
    ("dobfs", "uk-2002"),
    ("pr", "kron_n24_32"),
    ("pr", "soc-orkut"),
    ("pr", "uk-2002"),
]
PARTITIONERS = ["random", "biased-random", "metis"]
RUN = {"bfs": run_bfs, "dobfs": run_dobfs, "pr": run_pagerank}


def _elapsed(prim, graph, num_gpus, scale, partitioner=None):
    machine = Machine(num_gpus, scale=scale)
    kwargs = {"partitioner": partitioner} if partitioner else {}
    if prim == "pr":
        kwargs["max_iter"] = 30  # fixed-iteration PR for benchmarking
        _, metrics, _ = RUN[prim](graph, machine, **kwargs)
    else:
        _, metrics, _ = RUN[prim](graph, machine, src=1, **kwargs)
    return metrics.elapsed


@pytest.mark.benchmark(group="fig2")
def test_fig2_partitioner_impact(benchmark):
    rows = []
    wins = {p: 0 for p in PARTITIONERS}
    for prim, ds in GRID:
        g = datasets.load(ds)
        scale = datasets.machine_scale(ds)
        base = _elapsed(prim, g, 1, scale)
        speedups = {}
        for pname in PARTITIONERS:
            t = _elapsed(prim, g, 4, scale, make_partitioner(pname, seed=1))
            speedups[pname] = base / t
        best = max(speedups, key=speedups.get)
        wins[best] += 1
        rows.append(
            [f"{prim}+{ds}"]
            + [f"{speedups[p]:.2f}" for p in PARTITIONERS]
            + [best]
        )

    emit_report(
        "fig2_partitioners",
        render_table(
            ["workload"] + PARTITIONERS + ["best"],
            rows,
            title="Fig. 2: 4-GPU speedup over 1 GPU per partitioner",
        ),
    )
    # paper shape: random is never far behind; metis wins at most a few
    # cells with small margins
    assert wins["metis"] <= 4

    g = datasets.load("soc-orkut")
    scale = datasets.machine_scale("soc-orkut")
    benchmark(
        lambda: _elapsed("bfs", g, 4, scale, make_partitioner("random", 1))
    )
