"""Fig. 6 — speedups separated by graph family (rmat / soc / web).

Paper findings:
* DOBFS scaling suffers *most* on rmat (its W sinks to O(|Vi|) while the
  broadcast H stays O(|V|), so communication dominates);
* the larger |E|/|V| of rmat *helps* BFS and PR scale (computation is
  O(|Ei|) vs communication at most O(|Vi|)).
We regenerate the per-family geomean speedup grid for BFS, DOBFS, PR at
2-6 GPUs.
"""

import pytest

from conftest import emit_report
from repro.analysis.reporting import render_table
from repro.analysis.scaling import geomean_speedups, run_speedup_sweep

FAMILIES = {
    "rmat": ["rmat_n20_512", "rmat_n21_256"],
    "soc": ["soc-LiveJournal1", "soc-orkut"],
    "web": ["indochina-2004", "uk-2002"],
}
GPU_COUNTS = (1, 2, 4, 6)


@pytest.mark.benchmark(group="fig6")
def test_fig6_family_speedups(benchmark):
    table = {}
    rows = []
    for prim in ("bfs", "dobfs", "pr"):
        for fam, suite in FAMILIES.items():
            pts = run_speedup_sweep(prim, suite, gpu_counts=GPU_COUNTS, src=1)
            sp = geomean_speedups(pts)
            table[(prim, fam)] = sp
            rows.append(
                [prim, fam] + [f"{sp[n]:.2f}" for n in GPU_COUNTS]
            )

    emit_report(
        "fig6_by_family",
        render_table(
            ["primitive", "family"] + [f"{n}GPU" for n in GPU_COUNTS],
            rows,
            title="Fig. 6: geomean speedup over 1 GPU by graph family",
        ),
    )

    # rmat hurts DOBFS most
    assert (
        table[("dobfs", "rmat")][6]
        <= min(table[("dobfs", "soc")][6], table[("dobfs", "web")][6]) + 0.05
    )
    # rmat's higher |E|/|V| helps BFS and PR relative to at least one
    # sparser family
    for prim in ("bfs", "pr"):
        assert table[(prim, "rmat")][6] >= min(
            table[(prim, "soc")][6], table[(prim, "web")][6]
        ) * 0.95

    benchmark(
        lambda: run_speedup_sweep(
            "bfs", ["rmat_n20_512"], gpu_counts=(1, 4), src=1
        )
    )
