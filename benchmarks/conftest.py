"""Shared benchmark plumbing.

Each benchmark module regenerates one paper artifact (table or figure):
it sweeps the workload, prints the reproduced rows/series with
``emit_report`` (also writing ``benchmarks/results/<name>.txt``), and
registers one representative run with pytest-benchmark for timing.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit_report(name: str, text: str) -> None:
    """Print a reproduced artifact and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
