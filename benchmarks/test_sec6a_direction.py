"""Section VI-A — direction-optimizing traversal ablation.

Paper findings reproduced here:
* DOBFS beats plain BFS by a large factor on power-law graphs (edge
  skipping cuts W to a|E| with a << 1);
* do_a = 0.01, do_b = 0.1 "gives good performance for social graphs";
* the thresholds are mostly *GPU-count independent* — the switch happens
  at the same iteration for 1-6 GPUs.
"""

import pytest

from conftest import emit_report
from repro.analysis.reporting import render_table
from repro.core.direction import BACKWARD
from repro.graph import datasets
from repro.primitives import run_bfs, run_dobfs
from repro.sim.machine import Machine

DATASET = "soc-orkut"


def _run(num_gpus, do_a=0.01, do_b=0.1):
    g = datasets.load(DATASET)
    scale = datasets.machine_scale(DATASET)
    machine = Machine(num_gpus, scale=scale)
    labels, metrics, prob = run_dobfs(
        g, machine, src=1, do_a=do_a, do_b=do_b
    )
    switch_iter = next(
        (
            r.iteration
            for r in metrics.iterations
            if r.direction == BACKWARD
        ),
        -1,
    )
    return metrics, switch_iter


@pytest.mark.benchmark(group="sec6a")
def test_sec6a_direction_optimization(benchmark):
    g = datasets.load(DATASET)
    scale = datasets.machine_scale(DATASET)

    # --- edge-skipping benefit on 1 GPU ---------------------------------
    _, m_bfs, _ = run_bfs(g, Machine(1, scale=scale), src=1)
    m_do, _ = _run(1)
    w_ratio = m_do.total_edges_visited / m_bfs.total_edges_visited
    speedup = m_bfs.elapsed / m_do.elapsed

    # --- threshold sweep --------------------------------------------------
    rows = [["edge-skip a", f"{w_ratio:.4f}", "<< 1"],
            ["1-GPU DOBFS vs BFS", f"{speedup:.1f}x", ">1"]]
    sweep = []
    for do_a in (1e-4, 0.01, 1.0, float("inf")):
        m, sw = _run(1, do_a=do_a)
        sweep.append((do_a, m.elapsed, sw))
        rows.append([f"do_a={do_a:g}", f"{m.elapsed * 1e3:.3f} ms",
                     f"switch@{sw}"])
    # the paper's default is at or near the best of the sweep
    best = min(t for _, t, _ in sweep)
    default_time = next(t for a, t, _ in sweep if a == 0.01)
    assert default_time <= best * 1.3

    # pure-forward (never switch) must be slower than direction-optimized
    fwd_only = next(t for a, t, _ in sweep if a == float("inf"))
    assert default_time < fwd_only

    # --- GPU-count independence of the switch point -----------------------
    switch_iters = {n: _run(n)[1] for n in (1, 2, 4, 6)}
    rows.append(["switch iteration by GPUs",
                 str(sorted(switch_iters.values())), "same"])
    assert len(set(switch_iters.values())) == 1, switch_iters

    emit_report(
        "sec6a_direction",
        render_table(
            ["quantity", "measured", "expectation"],
            rows,
            title=f"Sec VI-A: direction optimization on {DATASET}",
        ),
    )
    assert w_ratio < 0.25
    assert speedup > 2.0

    benchmark(lambda: _run(1))
