"""Section VII-A — road networks: the case multi-GPU makes *worse*.

"Road networks, and high-diameter, low-degree graphs in general ... have
insufficient parallelism to saturate even 1 GPU, much less mGPUs; as a
result, iteration overhead occupies a significant portion of the
runtime, and we observed performance decreases on mGPU."

We regenerate that observation: BFS on the road stand-in slows down as
GPUs are added (per-iteration overhead × thousands of iterations), while
the same sweep on a power-law graph of comparable size speeds up — and
the BSP decomposition shows road runtime is synchronization-dominated.
"""

import pytest

from conftest import emit_report
from repro.analysis.bsp import decompose
from repro.analysis.reporting import render_table
from repro.graph import datasets
from repro.primitives import run_bfs
from repro.sim.machine import Machine

GPU_COUNTS = (1, 2, 4, 6)


def _sweep(ds_name):
    g = datasets.load(ds_name)
    scale = datasets.machine_scale(ds_name)
    out = {}
    for n in GPU_COUNTS:
        _, metrics, _ = run_bfs(g, Machine(n, scale=scale), src=0)
        out[n] = metrics
    return out


@pytest.mark.benchmark(group="sec7a")
def test_sec7a_road_network_slowdown(benchmark):
    road = _sweep("road-grid")
    power = _sweep("soc-orkut")

    rows = []
    for n in GPU_COUNTS:
        r, p = road[n], power[n]
        r_sync = decompose(r).fractions()["synchronize"]
        rows.append(
            [
                n,
                f"{r.elapsed * 1e3:.2f}",
                f"{road[1].elapsed / r.elapsed:.2f}x",
                f"{r_sync:.0%}",
                r.supersteps,
                f"{power[1].elapsed / p.elapsed:.2f}x",
            ]
        )

    emit_report(
        "sec7a_road_networks",
        render_table(
            ["GPUs", "road ms", "road speedup", "road sync frac",
             "road S", "soc speedup"],
            rows,
            title="Sec VII-A: road network vs power-law BFS scaling",
        ),
    )

    # performance DECREASES on multi-GPU for the road network...
    assert road[6].elapsed > road[1].elapsed
    assert road[2].elapsed > road[1].elapsed
    # ...while the power-law graph speeds up on the same sweep
    assert power[6].elapsed < power[1].elapsed
    # overhead dominance: a large share of multi-GPU road runtime is
    # barrier synchronization (the rest of the "compute" share is itself
    # mostly per-iteration framework overhead, not edge work)
    assert decompose(road[4]).fractions()["synchronize"] > 0.15
    # per-superstep time sits at the latency floor (sub-millisecond),
    # i.e. the GPU is starved — the Section V-B regime
    assert road[4].elapsed / road[4].supersteps < 1e-3
    # the iteration count is what kills it: S ~ diameter
    assert road[1].supersteps > 10 * power[1].supersteps

    benchmark(lambda: _sweep("road-grid"))
