"""Table V — large graphs on 4 GPUs, and the cost of 64-bit IDs.

Paper results:
* friendster (3.62B edges) BFS in 339 ms; sk-2005 PR at 154 ms/iter —
  large graphs fit and run well in-core on 4 GPUs with careful memory
  management;
* rmat_n24_32 BFS: {32-bit, 64-bit eID, 64-bit vID} = {67.6, 52.6, 33.9}
  GTEPS — 64-bit vertex IDs double the bytes per edge and halve
  throughput ("reads 2x data per edge as 32-bit, and records 0.5x
  performance").
"""

import pytest

from conftest import emit_report
from repro.analysis.gteps import traversal_gteps
from repro.analysis.reporting import render_table
from repro.graph import datasets
from repro.primitives import run_bfs, run_dobfs, run_pagerank
from repro.sim.machine import Machine
from repro.types import ID32, ID32_V64E, ID64


@pytest.mark.benchmark(group="table5")
def test_table5_large_graphs(benchmark):
    rows = []

    # --- large graphs ------------------------------------------------------
    fr = datasets.load("friendster")
    fr_scale = datasets.machine_scale("friendster")
    labels, m_bfs, _ = run_dobfs(fr, Machine(4, scale=fr_scale), src=1)
    rows.append(["friendster BFS (4 GPU)", f"{m_bfs.elapsed * 1e3:.0f} ms",
                 "339 ms"])
    _, m_pr, _ = run_pagerank(fr, Machine(4, scale=fr_scale), max_iter=10)
    per_iter = m_pr.elapsed / m_pr.supersteps * 1e3
    rows.append(["friendster PR (per iter)", f"{per_iter:.0f} ms", "1024 ms"])

    sk = datasets.load("sk-2005")
    sk_scale = datasets.machine_scale("sk-2005")
    _, m_pr2, _ = run_pagerank(sk, Machine(4, scale=sk_scale), max_iter=10)
    rows.append(["sk-2005 PR (per iter)",
                 f"{m_pr2.elapsed / m_pr2.supersteps * 1e3:.0f} ms",
                 "154 ms"])
    # all large-graph runs fit in the 4x12 GB of device memory
    assert max(m_bfs.peak_memory.values()) < 12 * 1024**3

    # --- ID width sweep on rmat_n24_32 (DOBFS, the paper's BFS config) ---
    gteps = {}
    for label, ids in (("32bit", ID32), ("64bit eID", ID32_V64E),
                       ("64bit vID", ID64)):
        g = datasets.load("rmat_n24_32", ids=ids)
        scale = datasets.machine_scale("rmat_n24_32")
        labels, metrics, _ = run_dobfs(g, Machine(4, scale=scale), src=1)
        gteps[label] = traversal_gteps(g, labels, metrics)
    paper = {"32bit": 67.6, "64bit eID": 52.6, "64bit vID": 33.9}
    for label in gteps:
        rows.append([f"rmat_n24_32 BFS {label}", f"{gteps[label]:.1f} GTEPS",
                     f"{paper[label]} GTEPS"])

    emit_report(
        "table5_large",
        render_table(["row", "measured", "paper"], rows,
                     title="Table V: large graphs and ID widths (4 GPUs)"),
    )

    # the paper's ordering and ~0.5x vertex-ID penalty
    assert gteps["32bit"] > gteps["64bit eID"] > gteps["64bit vID"]
    ratio = gteps["64bit vID"] / gteps["32bit"]
    assert 0.35 < ratio < 0.85, ratio

    g32 = datasets.load("rmat_n24_32")
    scale = datasets.machine_scale("rmat_n24_32")
    benchmark(lambda: run_bfs(g32, Machine(4, scale=scale), src=1))
