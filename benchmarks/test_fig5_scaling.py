"""Fig. 5 — strong and weak scaling of DOBFS, BFS, PR on K80 and P100.

Paper findings:
* BFS and PR: near-linear weak AND strong scaling from 1 to 8 GPUs;
* DOBFS: positive weak scaling but flat strong scaling (its W and H are
  both ~O(|Vi|)), and the effect is *worse on P100* because computation
  speeds up while inter-GPU bandwidth stays the same;
* workloads: strong = rmat 2^24 EF 32; weak-edge = 2^19 with EF 256·n;
  weak-vertex = 2^19·n with EF 256 (ours are scale-reduced with the
  matching machine scale, DESIGN.md).
"""

import pytest

from conftest import emit_report
from repro.analysis.reporting import render_series
from repro.analysis.scaling import (
    strong_scaling,
    weak_edge_scaling,
    weak_vertex_scaling,
)
from repro.sim.device import K80_HALF, P100

GPUS = (1, 2, 3, 4, 5, 6, 7, 8)
POW2 = (1, 2, 4, 8)


def _series(points):
    return [p.num_gpus for p in points], [p.gteps for p in points]


@pytest.mark.benchmark(group="fig5")
def test_fig5_scaling(benchmark):
    lines = []
    curves = {}
    for spec, sysname in ((K80_HALF, "K80"), (P100, "P100")):
        for prim in ("dobfs", "bfs", "pr"):
            s = strong_scaling(prim, gpu_counts=GPUS, spec=spec,
                               scale=13, edge_factor=32, machine_scale=2048.0)
            we = weak_edge_scaling(prim, gpu_counts=GPUS, spec=spec)
            wv = weak_vertex_scaling(prim, gpu_counts=POW2, spec=spec)
            for label, pts in (
                ("strong", s),
                ("weak-edge", we),
                ("weak-vertex", wv),
            ):
                xs, ys = _series(pts)
                curves[(prim, sysname, label)] = dict(zip(xs, ys))
                lines.append(
                    render_series(f"{prim} {sysname} {label} (GTEPS)", xs, ys)
                )

    emit_report("fig5_scaling", "\n".join(lines))

    for sysname in ("K80", "P100"):
        # BFS and PR strong-scale well: 8 GPUs >= 1.8x the 1-GPU rate
        # (the faster P100 hits the communication wall sooner)
        for prim in ("bfs", "pr"):
            c = curves[(prim, sysname, "strong")]
            assert c[8] > 1.8 * c[1], (prim, sysname, c)
        # DOBFS strong scaling is flat-to-negative
        c = curves[("dobfs", sysname, "strong")]
        assert c[8] < 1.6 * c[1], c
        # DOBFS still weak-scales (throughput does not collapse)
        c = curves[("dobfs", sysname, "weak-edge")]
        assert c[8] > 0.5 * c[1], c
    # P100 computes faster at equal interconnect: 1-GPU rates higher...
    assert (
        curves[("bfs", "P100", "strong")][1]
        > curves[("bfs", "K80", "strong")][1]
    )
    # ...but DOBFS's strong-scaling *ratio* is no better on P100
    k80_ratio = (
        curves[("dobfs", "K80", "strong")][8]
        / curves[("dobfs", "K80", "strong")][1]
    )
    p100_ratio = (
        curves[("dobfs", "P100", "strong")][8]
        / curves[("dobfs", "P100", "strong")][1]
    )
    assert p100_ratio <= k80_ratio * 1.1

    benchmark(
        lambda: strong_scaling(
            "bfs", gpu_counts=(1, 8), spec=K80_HALF, scale=11,
            edge_factor=16, machine_scale=2048.0,
        )
    )
