"""Graph500-style BFS evaluation: many random sources, rate statistics.

The paper follows GPU-BFS convention (averages over repeated runs,
Section VII-A: "all tests have been repeated at least 10 times"); the
Graph500 benchmark formalizes it as 64 random sources with min/median/
max TEPS.  This harness runs the protocol on the rmat scaling graph with
the paper's 4-GPU configuration, exercising the reuse-one-problem batch
path (the Appendix A main loop).
"""

import numpy as np
import pytest

from conftest import emit_report
from repro.analysis.gteps import traversed_edges
from repro.analysis.reporting import render_table
from repro.graph import datasets
from repro.primitives.bfs import run_bfs_batch
from repro.sim.machine import Machine

NUM_SOURCES = 16  # Graph500 uses 64; scaled with the datasets


@pytest.mark.benchmark(group="graph500")
def test_graph500_style_bfs(benchmark):
    ds = "rmat_n24_32"
    g = datasets.load(ds)
    scale = datasets.machine_scale(ds)
    rng = np.random.default_rng(500)
    # Graph500 requires sources with degree > 0
    deg = g.out_degree()
    candidates = np.flatnonzero(deg > 0)
    sources = rng.choice(candidates, size=NUM_SOURCES, replace=False)

    machine = Machine(4, scale=scale)
    labels_list, metrics_list, _ = run_bfs_batch(g, machine, sources)

    rates = []
    for labels, metrics in zip(labels_list, metrics_list):
        edges = traversed_edges(g, labels)
        rates.append(edges * scale / metrics.elapsed / 1e9)
    rates = np.asarray(rates)

    rows = [
        ["sources", NUM_SOURCES, ""],
        ["min GTEPS", f"{rates.min():.1f}", ""],
        ["median GTEPS", f"{np.median(rates):.1f}", ""],
        ["max GTEPS", f"{rates.max():.1f}", ""],
        ["harmonic mean", f"{len(rates) / np.sum(1.0 / rates):.1f}", ""],
    ]
    emit_report(
        "graph500_style",
        render_table(["stat", "value", ""], rows,
                     title=f"Graph500-style BFS on {ds}, 4x K40"),
    )

    # all sources traverse the giant component at comparable rates
    assert rates.min() > 0
    assert rates.max() / max(rates.min(), 1e-9) < 5.0
    # every run is correct BFS (validated structurally)
    from repro.analysis.validate import validate_bfs

    for src, labels in zip(sources[:4], labels_list[:4]):
        assert validate_bfs(g, int(src), labels) == []

    benchmark(
        lambda: run_bfs_batch(g, Machine(4, scale=scale), sources[:2])
    )
